//! Ablation: what each ingredient of FedADMM buys.
//!
//! Section III-B shows that FedADMM's local problem reduces to FedProx when
//! the dual variables are dropped (`y ≡ 0`), and to FedAvg when additionally
//! `ρ = 0`. Running the three methods on the same non-IID smoke setting is
//! therefore an ablation of FedADMM's two ingredients (dual variables and
//! proximal term), with the warm-start/cold-start choice (Figure 8) as a
//! third axis. The report prints rounds-to-target for each variant; the
//! Criterion group times a single round of each, confirming that the
//! ingredients add no per-round computational cost — the gains are purely in
//! rounds (communication).

use criterion::{criterion_group, criterion_main, Criterion};
use fedadmm_bench::smoke_simulation;
use fedadmm_core::algorithms::{Algorithm, FedAdmm, FedAvg, FedProx, LocalInit, ServerStepSize};
use fedadmm_core::prelude::DataDistribution;

const RHO: f32 = 0.3;
const TARGET: f32 = 0.6;
const BUDGET: usize = 40;

/// A named factory for one ablation variant.
type Variant = (&'static str, fn() -> Box<dyn Algorithm>);

fn variants() -> Vec<Variant> {
    vec![
        ("fedadmm_warm_start", || {
            Box::new(FedAdmm::new(RHO, ServerStepSize::Constant(1.0))) as Box<dyn Algorithm>
        }),
        ("fedadmm_cold_start", || {
            Box::new(
                FedAdmm::new(RHO, ServerStepSize::Constant(1.0))
                    .with_local_init(LocalInit::GlobalModel),
            )
        }),
        ("fedprox_no_dual", || Box::new(FedProx::new(RHO))),
        ("fedavg_no_dual_no_prox", || Box::new(FedAvg::new())),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    // Reproduction report: rounds to the target accuracy for each variant.
    println!("\n[ablation @ smoke scale] FedADMM ingredient ablation (non-IID, target {TARGET})");
    println!("{:<26} | rounds to target | best accuracy", "variant");
    for (label, make) in variants() {
        let mut sim = smoke_simulation(make(), DataDistribution::NonIidShards, 97);
        let rounds = sim
            .run_until_accuracy(TARGET, BUDGET)
            .expect("run succeeds");
        println!(
            "{:<26} | {:>16} | {:>13.3}",
            label,
            rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| format!("{BUDGET}+")),
            sim.history().best_accuracy()
        );
    }

    // Per-round cost of each variant (they should be indistinguishable:
    // the dual variable costs one extra axpy per batch, not an extra epoch).
    let mut group = c.benchmark_group("ablation_round_cost");
    group.sample_size(10);
    for (label, make) in variants() {
        group.bench_function(label, |bench| {
            let mut sim = smoke_simulation(make(), DataDistribution::NonIidShards, 3);
            bench.iter(|| sim.run_round().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
