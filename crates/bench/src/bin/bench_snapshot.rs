//! CLI for the `BENCH_*.json` perf-snapshot harness (see
//! [`fedadmm_bench::snapshot`]).
//!
//! ```text
//! bench-snapshot [--scale smoke|medium|scaled] [--rounds N] [--out DIR]
//! bench-snapshot --validate FILE
//! bench-snapshot --diff A.json B.json
//! ```

use fedadmm_bench::snapshot::{
    build_snapshot, diff_snapshots, repo_root, rounds_for, snapshot_filename, validate_snapshot,
};
use fedadmm_experiments::common::Scale;
use serde_json::Value;
use std::process::ExitCode;

fn read_snapshot(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn parse_scale(s: &str) -> Option<Scale> {
    // `medium` is the documented CI alias for the minutes-scale config.
    if s.eq_ignore_ascii_case("medium") {
        return Some(Scale::Scaled);
    }
    Scale::parse(s)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-snapshot [--scale smoke|medium|scaled] [--rounds N] [--out DIR]\n\
         \x20      bench-snapshot --validate FILE\n\
         \x20      bench-snapshot --diff A.json B.json"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Smoke;
    let mut rounds: Option<usize> = None;
    let mut out_dir = repo_root();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--validate" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                return match read_snapshot(path)
                    .and_then(|s| validate_snapshot(&s).map_err(|e| format!("{path}: {e}")))
                {
                    Ok(()) => {
                        println!(
                            "{path}: valid (schema v{})",
                            fedadmm_bench::snapshot::SCHEMA_VERSION
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("invalid snapshot: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            "--diff" => {
                let (Some(a), Some(b)) = (args.get(i + 1), args.get(i + 2)) else {
                    return usage();
                };
                return match (read_snapshot(a), read_snapshot(b)) {
                    (Ok(a), Ok(b)) => {
                        print!("{}", diff_snapshots(&a, &b));
                        ExitCode::SUCCESS
                    }
                    (Err(e), _) | (_, Err(e)) => {
                        eprintln!("{e}");
                        ExitCode::FAILURE
                    }
                };
            }
            "--scale" => {
                let Some(value) = args.get(i + 1).and_then(|s| parse_scale(s)) else {
                    return usage();
                };
                scale = value;
                i += 2;
            }
            "--rounds" => {
                let Some(value) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                rounds = Some(value);
                i += 2;
            }
            "--out" => {
                let Some(dir) = args.get(i + 1) else {
                    return usage();
                };
                out_dir = std::path::PathBuf::from(dir);
                i += 2;
            }
            _ => return usage(),
        }
    }

    let rounds = rounds.unwrap_or_else(|| rounds_for(scale));
    eprintln!("running {scale:?} snapshot ({rounds} rounds per scenario)...");
    let snapshot = match build_snapshot(scale, rounds) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("snapshot run failed: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_snapshot(&snapshot) {
        eprintln!("generated snapshot fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    let path = out_dir.join(snapshot_filename(&snapshot));
    let text = serde_json::to_string_pretty(&snapshot).expect("snapshot serialises");
    if let Err(e) = std::fs::write(&path, text + "\n") {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    if let Some(scenarios) = snapshot["scenarios"].as_array() {
        for s in scenarios {
            println!(
                "  {:24} {:8.2} rounds/s  {:>12} bytes  staleness p99 {:.1}",
                s["name"].as_str().unwrap_or("?"),
                s["rounds_per_sec"].as_f64().unwrap_or(0.0),
                s["bytes_moved"].as_u64().unwrap_or(0),
                s["staleness"]["p99"].as_f64().unwrap_or(0.0),
            );
        }
    }
    println!(
        "  overhead: recorder {:+.2}% (noise floor {:+.2}%)",
        snapshot["overhead"]["recorder_pct"].as_f64().unwrap_or(0.0),
        snapshot["overhead"]["noop_rerun_pct"]
            .as_f64()
            .unwrap_or(0.0),
    );
    ExitCode::SUCCESS
}
