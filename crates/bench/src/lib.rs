//! Support code for the Criterion benchmark suite.
//!
//! Each bench target in `benches/` corresponds to one table or figure of
//! the paper. Because regenerating a full table is an *experiment* rather
//! than a micro-benchmark, every bench does two things:
//!
//! 1. it regenerates the corresponding artefact at `Scale::Smoke` once and
//!    prints the same rows/series the paper reports (so that `cargo bench`
//!    output doubles as a miniature reproduction log), and
//! 2. it benchmarks the representative unit of work behind that artefact
//!    (typically "one communication round of algorithm X under setting Y")
//!    with Criterion, which is what the timing numbers refer to.

pub mod snapshot;

use fedadmm_core::prelude::*;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_experiments::common::{Scale, Setting};
use fedadmm_nn::models::ModelSpec;

/// Prints an experiment report produced by the experiments crate, prefixed
/// so it is easy to find in `cargo bench` output.
pub fn print_report(report: &fedadmm_experiments::common::ExperimentReport) {
    println!(
        "\n[reproduction @ smoke scale] {} — {}",
        report.name, report.description
    );
    println!("{}", report.rendered);
}

/// A small synchronous engine used as the unit of work in round benchmarks.
pub fn smoke_simulation(
    algorithm: Box<dyn Algorithm>,
    distribution: DataDistribution,
    seed: u64,
) -> SyncEngine<Box<dyn Algorithm>> {
    let setting = Setting::for_dataset(SyntheticDataset::Mnist, distribution, 100, Scale::Smoke);
    let mut setting = setting;
    setting.seed = seed;
    setting
        .build_simulation(algorithm)
        .expect("smoke setting is valid")
}

/// The standard algorithm line-up used by the round benchmarks.
pub fn bench_suite() -> Vec<(&'static str, Box<dyn Algorithm>)> {
    vec![
        ("FedSGD", Box::new(FedSgd::new(0.1)) as Box<dyn Algorithm>),
        ("FedADMM", Box::new(FedAdmm::paper_default())),
        ("FedAvg", Box::new(FedAvg::new())),
        ("FedProx", Box::new(FedProx::new(0.1))),
        ("SCAFFOLD", Box::new(Scaffold::new())),
    ]
}

/// A tiny MLP spec shared by micro-benchmarks.
pub fn small_mlp() -> ModelSpec {
    ModelSpec::Mlp {
        input_dim: 784,
        hidden_dim: 32,
        num_classes: 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_simulation_runs_a_round() {
        let mut sim = smoke_simulation(
            Box::new(FedAdmm::paper_default()),
            DataDistribution::NonIidShards,
            0,
        );
        let record = sim.run_round().unwrap();
        assert!(record.test_accuracy.is_finite());
    }

    #[test]
    fn bench_suite_is_the_paper_lineup() {
        let names: Vec<&str> = bench_suite().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["FedSGD", "FedADMM", "FedAvg", "FedProx", "SCAFFOLD"]
        );
    }
}
