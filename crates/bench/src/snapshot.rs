//! The `bench-snapshot` harness: schema-versioned `BENCH_*.json`
//! performance snapshots of the engine.
//!
//! Criterion answers "did this micro-operation get slower?"; this harness
//! answers "what does a whole federated run cost right now?". It drives a
//! fixed scenario matrix (sync / semi-async × IID / non-IID, plus a
//! large-population spill-store scenario, a heterogeneous-epochs
//! straggler-skew scenario that stresses the dispatch pool, a fused
//! compression + privacy wire scenario timed against its plain
//! reference, and a train-bound dense-compute scenario that stresses the
//! local-SGD kernels) through the
//! [`RoundEngine`] with a [`Recorder`] installed and writes one JSON file
//! per invocation, named `BENCH_<date>_<git-sha>.json`, containing
//! rounds/sec, bytes moved (uploads and θ broadcasts), staleness quantiles,
//! per-phase timing quantiles and the process peak RSS. Committing a
//! snapshot per PR gives the repo a perf *trajectory*, not just a pass/fail
//! bit.
//!
//! The schema is versioned ([`SCHEMA_VERSION`]) and checked by
//! [`validate_snapshot`]; CI runs `bench-snapshot --scale smoke` and
//! validates the output on every push. Two snapshots can be compared with
//! `bench-snapshot --diff A.json B.json`.

use fedadmm_core::engine::RoundEngine;
use fedadmm_core::prelude::*;
use fedadmm_data::partition::Partition;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_data::Dataset;
use fedadmm_experiments::common::{Scale, Setting, SUBSTRATE_RHO};
use fedadmm_nn::models::ModelSpec;
use fedadmm_privacy::prelude::GaussianMechanism;
use fedadmm_system::device::{DeviceClass, DevicePopulation};
use fedadmm_telemetry::{names, peak_rss_bytes, Histogram, Recorder, Telemetry};
use fedadmm_tensor::TensorResult;
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

/// Version of the snapshot JSON schema. Bump when renaming or removing
/// fields, or when validation starts requiring new ones; CI validation
/// rejects snapshots with any other version. v2 added the mandatory
/// large-population spill-store scenario; v3 added the straggler-skew
/// scenario, the per-scenario dispatch counters and the top-level
/// `dispatch` block; v4 added the fused compression + privacy wire
/// scenario, the per-scenario `wire_bytes` / `dense_wire_ratio` fields,
/// and redefined `bytes_moved` as true wire bytes (quantized size when
/// the wire path is on) instead of dense `4 · floats`; v5 added the
/// train-bound dense-compute scenario with its `samples_per_sec` /
/// `steps_per_sec` throughput fields.
pub const SCHEMA_VERSION: u64 = 5;

/// Which scheduler a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The synchronous round protocol ([`SyncRounds`]).
    Sync,
    /// The deadline-driven straggler-tolerant protocol ([`SemiAsync`]),
    /// with per-client speeds from a tiered [`DevicePopulation`].
    SemiAsync,
}

impl SchedulerKind {
    /// Stable label used in scenario names and the JSON.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Sync => "sync",
            SchedulerKind::SemiAsync => "semi-async",
        }
    }
}

/// One cell of the benchmark matrix.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// Client data distribution.
    pub distribution: DataDistribution,
}

impl ScenarioSpec {
    /// Stable scenario name, e.g. `"semi-async/non-IID"`.
    pub fn name(&self) -> String {
        format!("{}/{}", self.scheduler.label(), self.distribution.label())
    }
}

/// The fixed scenario matrix: sync / semi-async × IID / non-IID.
pub fn scenario_matrix() -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    for scheduler in [SchedulerKind::Sync, SchedulerKind::SemiAsync] {
        for distribution in [DataDistribution::Iid, DataDistribution::NonIidShards] {
            out.push(ScenarioSpec {
                scheduler,
                distribution,
            });
        }
    }
    out
}

/// Rounds each scenario runs at the given scale.
pub fn rounds_for(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 8,
        Scale::Scaled => 20,
        Scale::Paper => 50,
    }
}

fn base_setting(distribution: DataDistribution, scale: Scale) -> Setting {
    Setting::for_dataset(SyntheticDataset::Mnist, distribution, 100, scale)
}

/// The tiered device fleet driving the semi-async scenarios, bridged into
/// per-client epoch seconds via [`DevicePopulation::seconds_per_epoch`].
fn semi_async_config(setting: &Setting) -> SemiAsyncConfig {
    let fleet = DevicePopulation::tiered(
        setting.num_clients,
        &[
            (DeviceClass::HighEnd, 0.5),
            (DeviceClass::MidRange, 0.3),
            (DeviceClass::LowEnd, 0.2),
        ],
        setting.seed,
    );
    let samples_per_client = setting.train_size / setting.num_clients.max(1);
    let seconds = fleet.seconds_per_epoch(setting.num_clients, samples_per_client);
    // Deadline at the median per-round compute cost: the fast half makes
    // every round, the slow tail arrives stale.
    let mut sorted = seconds.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let deadline = sorted[sorted.len() / 2] * setting.local_epochs.max(1) as f64;
    SemiAsyncConfig {
        seconds_per_epoch: seconds,
        round_deadline: deadline.max(1e-6),
        staleness: StalenessWeight::Polynomial { exponent: 0.5 },
    }
}

fn hist_json(hist: Option<&Histogram>) -> Value {
    match hist {
        Some(h) if h.count() > 0 => json!({
            "count": h.count(),
            "mean": h.mean(),
            "p50": h.quantile(0.50),
            "p90": h.quantile(0.90),
            "p99": h.quantile(0.99),
            "max": h.max(),
        }),
        _ => json!({"count": 0u64, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}),
    }
}

fn counter(rec: &Recorder, name: &str) -> u64 {
    rec.metrics().counter_by_name(name).unwrap_or(0)
}

/// The upload-side byte fields of a finished run:
/// `(dense_bytes, wire_bytes, dense_wire_ratio)`. `dense_bytes` is the
/// classical `4 · floats` accounting; `wire_bytes` is the true on-the-wire
/// size (quantized payload + per-vector header when the engine's wire path
/// is on, identical to dense otherwise); the ratio is their quotient
/// (1.0 dense, ≈ 4 at 8 bits).
fn upload_fields(rec: &Recorder) -> (u64, u64, f64) {
    let dense = counter(rec, names::UPLOAD_FLOATS_TOTAL) * 4;
    let wire = counter(rec, names::WIRE_BYTES_TOTAL);
    let ratio = if wire > 0 {
        dense as f64 / wire as f64
    } else {
        1.0
    };
    (dense, wire, ratio)
}

/// The stable label of a dispatch mode in snapshot JSON.
pub fn dispatch_mode_label(mode: DispatchMode) -> &'static str {
    match mode {
        DispatchMode::WorkStealing => "steal",
        DispatchMode::Static => "static",
    }
}

/// The dispatch counters of a finished run: `(chunks, steals, imbalance)`.
/// The imbalance gauge holds the last round's max/mean busy-seconds ratio
/// across workers (1.0 = perfectly balanced; 0.0 when never timed).
fn dispatch_fields(rec: &Recorder) -> (u64, u64, f64) {
    (
        counter(rec, names::DISPATCH_CHUNKS_TOTAL),
        counter(rec, names::DISPATCH_STEALS_TOTAL),
        rec.metrics()
            .gauge_by_name(names::DISPATCH_IMBALANCE)
            .unwrap_or(0.0),
    )
}

/// Runs one scenario with a [`Recorder`] installed and returns its JSON row.
pub fn run_scenario(spec: &ScenarioSpec, scale: Scale, rounds: usize) -> TensorResult<Value> {
    let setting = base_setting(spec.distribution, scale);
    let algorithm = FedAdmm::new(SUBSTRATE_RHO, ServerStepSize::Constant(1.0));
    let recorder = Box::new(Recorder::new());
    // The larger scales cap evaluation at a quarter of the test set so the
    // snapshot measures the federated pipeline, not repeated full evals.
    let eval_fraction = match scale {
        Scale::Smoke => 1.0,
        Scale::Scaled | Scale::Paper => 0.25,
    };
    let (wall_seconds, final_accuracy, history, telemetry) = match spec.scheduler {
        SchedulerKind::Sync => {
            let mut engine = setting
                .build_sim(algorithm)?
                .eval_subset(eval_fraction)
                .with_telemetry(recorder);
            let start = Instant::now();
            engine.run_rounds(rounds)?;
            let wall = start.elapsed().as_secs_f64();
            let acc = engine.history().final_accuracy();
            let telemetry = engine.take_telemetry();
            (wall, acc, engine.into_history(), telemetry)
        }
        SchedulerKind::SemiAsync => {
            let scheduler = SemiAsync::new(semi_async_config(&setting));
            let mut engine = setting
                .build_with_scheduler(algorithm, scheduler)?
                .eval_subset(eval_fraction)
                .with_telemetry(recorder);
            let start = Instant::now();
            engine.run_rounds(rounds)?;
            let wall = start.elapsed().as_secs_f64();
            let acc = engine.history().final_accuracy();
            let telemetry = engine.take_telemetry();
            (wall, acc, engine.into_history(), telemetry)
        }
    };
    let rec = telemetry
        .as_any()
        .and_then(|a| a.downcast_ref::<Recorder>())
        .expect("scenario telemetry is a Recorder");

    let (upload_bytes, wire_bytes, dense_wire_ratio) = upload_fields(rec);
    let broadcast_bytes = counter(rec, names::BROADCAST_FLOATS_TOTAL) * 4;
    let staleness_max = history.records.iter().map(|r| r.staleness_max).max();
    let (dispatch_chunks, dispatch_steals, dispatch_imbalance) = dispatch_fields(rec);
    Ok(json!({
        "name": spec.name(),
        "scheduler": spec.scheduler.label(),
        "distribution": spec.distribution.label(),
        "rounds": rounds,
        "wall_seconds": wall_seconds,
        "rounds_per_sec": rounds as f64 / wall_seconds.max(1e-12),
        "final_accuracy": final_accuracy as f64,
        "client_updates": counter(rec, names::CLIENT_UPDATES_TOTAL),
        "upload_bytes": upload_bytes,
        "broadcast_bytes": broadcast_bytes,
        "wire_bytes": wire_bytes,
        "dense_wire_ratio": dense_wire_ratio,
        "bytes_moved": wire_bytes + broadcast_bytes,
        "staleness": hist_json(rec.metrics().histogram_by_name(names::STALENESS_ROUNDS)),
        "staleness_max_recorded": staleness_max.unwrap_or(0),
        "client_compute_seconds": hist_json(rec.metrics().histogram_by_name(names::CLIENT_COMPUTE_SECONDS)),
        "aggregate_seconds": hist_json(rec.metrics().histogram_by_name(names::AGGREGATE_SECONDS)),
        "eval_seconds": hist_json(rec.metrics().histogram_by_name(names::EVAL_SECONDS)),
        "dispatch_chunks": dispatch_chunks,
        "dispatch_steals": dispatch_steals,
        "dispatch_imbalance": dispatch_imbalance,
    }))
}

/// Client population of the straggler-skew scenario at each scale.
pub fn straggler_population(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 96,
        Scale::Scaled | Scale::Paper => 192,
    }
}

/// Epochs the slow tier of the straggler-skew scenario runs per round.
pub const STRAGGLER_EPOCHS: usize = 16;

/// Runs the heterogeneous-epochs straggler-skew scenario: full
/// participation over tiny per-client shards (4 samples each), with every
/// forty-eighth client running [`STRAGGLER_EPOCHS`] local epochs while the rest
/// run one — the paper's system-heterogeneity protocol pushed to a skew
/// extreme. Because per-job compute is tiny, the scenario is dominated by
/// the dispatch path itself (scheduling, scratch reuse, allocation churn);
/// it is the row the work-stealing-pool roadmap item is judged against,
/// A/B-comparable via `FEDADMM_DISPATCH_MODE=static`.
pub fn run_straggler_scenario(scale: Scale, rounds: usize) -> TensorResult<Value> {
    const SAMPLES_PER_CLIENT: usize = 4;
    const SEED: u64 = 4242;
    let num_clients = straggler_population(scale);
    let config = FedConfig {
        num_clients,
        participation: Participation::Fraction(1.0),
        local_epochs: 1,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(SAMPLES_PER_CLIENT),
        local_learning_rate: 0.05,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed: SEED,
        eval_subset: usize::MAX,
    };
    let (train, test) =
        SyntheticDataset::Mnist.generate(num_clients * SAMPLES_PER_CLIENT, 200, SEED);
    let partition = DataDistribution::Iid.partition(&train, num_clients, SEED);
    let epochs: Vec<usize> = (0..num_clients)
        .map(|c| if c % 48 == 0 { STRAGGLER_EPOCHS } else { 1 })
        .collect();
    let mut engine = RoundEngine::new(
        config,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SyncRounds,
    )?
    .with_work_schedule(LocalWorkSchedule::PerClient(epochs))
    .eval_subset(0.25)
    .with_telemetry(Box::new(Recorder::new()));

    let start = Instant::now();
    engine.run_rounds(rounds)?;
    let wall_seconds = start.elapsed().as_secs_f64();
    let final_accuracy = engine.history().final_accuracy();
    let telemetry = engine.take_telemetry();
    let history = engine.into_history();
    let rec = telemetry
        .as_any()
        .and_then(|a| a.downcast_ref::<Recorder>())
        .expect("scenario telemetry is a Recorder");

    let (upload_bytes, wire_bytes, dense_wire_ratio) = upload_fields(rec);
    let broadcast_bytes = counter(rec, names::BROADCAST_FLOATS_TOTAL) * 4;
    let staleness_max = history.records.iter().map(|r| r.staleness_max).max();
    let (dispatch_chunks, dispatch_steals, dispatch_imbalance) = dispatch_fields(rec);
    Ok(json!({
        "name": format!("straggler-skew/{num_clients}-clients"),
        "scheduler": SchedulerKind::Sync.label(),
        "distribution": DataDistribution::Iid.label(),
        "num_clients": num_clients,
        "straggler_epochs": STRAGGLER_EPOCHS,
        "rounds": rounds,
        "wall_seconds": wall_seconds,
        "rounds_per_sec": rounds as f64 / wall_seconds.max(1e-12),
        "final_accuracy": final_accuracy as f64,
        "client_updates": counter(rec, names::CLIENT_UPDATES_TOTAL),
        "upload_bytes": upload_bytes,
        "broadcast_bytes": broadcast_bytes,
        "wire_bytes": wire_bytes,
        "dense_wire_ratio": dense_wire_ratio,
        "bytes_moved": wire_bytes + broadcast_bytes,
        "staleness": hist_json(rec.metrics().histogram_by_name(names::STALENESS_ROUNDS)),
        "staleness_max_recorded": staleness_max.unwrap_or(0),
        "client_compute_seconds": hist_json(rec.metrics().histogram_by_name(names::CLIENT_COMPUTE_SECONDS)),
        "aggregate_seconds": hist_json(rec.metrics().histogram_by_name(names::AGGREGATE_SECONDS)),
        "eval_seconds": hist_json(rec.metrics().histogram_by_name(names::EVAL_SECONDS)),
        "dispatch_chunks": dispatch_chunks,
        "dispatch_steals": dispatch_steals,
        "dispatch_imbalance": dispatch_imbalance,
    }))
}

/// Bit width of the wire scenario's quantizer.
pub const WIRE_BITS: u8 = 8;

/// Clip norm of the wire scenario's Gaussian mechanism — loose enough that
/// the accuracy signal survives at smoke scale while still exercising the
/// clip + noise arithmetic on every upload.
pub const WIRE_DP_CLIP: f32 = 20.0;

/// Noise multiplier of the wire scenario's Gaussian mechanism.
pub const WIRE_DP_NOISE: f32 = 1e-3;

/// Timing repetitions per wire-scenario leg. Both legs are deterministic
/// (same seed → identical accuracy and byte counters every repetition), so
/// only scheduler noise varies between runs; keeping each leg's fastest
/// wall time makes the paired plain-vs-fused comparison stable on hosts
/// where a single short run can swing by ±10 %.
pub const WIRE_TIMING_REPS: usize = 3;

/// Runs the fused compression + privacy wire scenario: the sync / non-IID
/// matrix cell with the wire path on — [`WIRE_BITS`]-bit stochastic
/// quantization plus Gaussian DP, both applied inside the dispatch workers,
/// with the server folding the coded cohort in one fused
/// dequantize-accumulate sweep — timed against a plain reference run of the
/// identical setting (same seed, same recorder, wire path disabled). The
/// row carries the usual scenario keys for the fused run plus the
/// reference `plain_rounds_per_sec` / `plain_final_accuracy` and the
/// relative `wire_overhead_pct`, the number the ≤ 15 % fused-path overhead
/// claim is judged against; the ~4× upload shrink shows up in
/// `dense_wire_ratio` and `bytes_moved`.
pub fn run_wire_scenario(scale: Scale, rounds: usize) -> TensorResult<Value> {
    let setting = base_setting(DataDistribution::NonIidShards, scale);
    let eval_fraction = match scale {
        Scale::Smoke => 1.0,
        Scale::Scaled | Scale::Paper => 0.25,
    };
    let run_leg = |wire: &WirePathConfig| -> TensorResult<(f64, f32, Box<dyn Telemetry>)> {
        let algorithm = FedAdmm::new(SUBSTRATE_RHO, ServerStepSize::Constant(1.0));
        let mut engine = setting
            .build_sim(algorithm)?
            .with_wire_path(wire.clone())
            .eval_subset(eval_fraction)
            .with_telemetry(Box::new(Recorder::new()));
        let start = Instant::now();
        engine.run_rounds(rounds)?;
        let wall = start.elapsed().as_secs_f64();
        Ok((
            wall,
            engine.history().final_accuracy(),
            engine.take_telemetry(),
        ))
    };
    // The repetitions alternate plain/fused rather than running each leg's
    // block back to back: on a loaded host, background activity drifts over
    // the seconds a leg block takes, and whichever leg ran later would
    // absorb the drift as phantom overhead. Interleaving exposes both legs
    // to the same conditions; keeping each leg's fastest wall time then
    // strips the symmetric noise (both legs are deterministic, so accuracy
    // and byte counters are identical across repetitions).
    let plain_cfg = WirePathConfig::disabled();
    let fused_cfg = WirePathConfig::enabled(Quantizer::new(WIRE_BITS, true)).with_guard(Arc::new(
        GaussianMechanism::new(WIRE_DP_CLIP, WIRE_DP_NOISE),
    ));
    let mut plain_wall = f64::INFINITY;
    let mut wall_seconds = f64::INFINITY;
    let mut plain_last = None;
    let mut fused_last = None;
    for _ in 0..WIRE_TIMING_REPS {
        let (wall, acc, telemetry) = run_leg(&plain_cfg)?;
        plain_wall = plain_wall.min(wall);
        plain_last = Some((acc, telemetry));
        let (wall, acc, telemetry) = run_leg(&fused_cfg)?;
        wall_seconds = wall_seconds.min(wall);
        fused_last = Some((acc, telemetry));
    }
    let (plain_acc, plain_telemetry) = plain_last.expect("WIRE_TIMING_REPS is nonzero");
    let (final_accuracy, telemetry) = fused_last.expect("WIRE_TIMING_REPS is nonzero");
    let plain_rec = plain_telemetry
        .as_any()
        .and_then(|a| a.downcast_ref::<Recorder>())
        .expect("scenario telemetry is a Recorder");
    let (plain_upload_bytes, _, _) = upload_fields(plain_rec);
    let rec = telemetry
        .as_any()
        .and_then(|a| a.downcast_ref::<Recorder>())
        .expect("scenario telemetry is a Recorder");

    let (upload_bytes, wire_bytes, dense_wire_ratio) = upload_fields(rec);
    let broadcast_bytes = counter(rec, names::BROADCAST_FLOATS_TOTAL) * 4;
    let (dispatch_chunks, dispatch_steals, dispatch_imbalance) = dispatch_fields(rec);
    let plain_rounds_per_sec = rounds as f64 / plain_wall.max(1e-12);
    let rounds_per_sec = rounds as f64 / wall_seconds.max(1e-12);
    let wire_overhead_pct =
        (plain_rounds_per_sec - rounds_per_sec) / plain_rounds_per_sec.max(1e-12) * 100.0;
    Ok(json!({
        "name": format!("wire/non-IID/{WIRE_BITS}bit+dp"),
        "scheduler": SchedulerKind::Sync.label(),
        "distribution": DataDistribution::NonIidShards.label(),
        "quantizer_bits": WIRE_BITS,
        "dp_clip_norm": WIRE_DP_CLIP as f64,
        "dp_noise_multiplier": WIRE_DP_NOISE as f64,
        "rounds": rounds,
        "wall_seconds": wall_seconds,
        "rounds_per_sec": rounds_per_sec,
        "final_accuracy": final_accuracy as f64,
        "plain_wall_seconds": plain_wall,
        "plain_rounds_per_sec": plain_rounds_per_sec,
        "plain_final_accuracy": plain_acc as f64,
        "plain_upload_bytes": plain_upload_bytes,
        "wire_overhead_pct": wire_overhead_pct,
        "client_updates": counter(rec, names::CLIENT_UPDATES_TOTAL),
        "upload_bytes": upload_bytes,
        "broadcast_bytes": broadcast_bytes,
        "wire_bytes": wire_bytes,
        "dense_wire_ratio": dense_wire_ratio,
        "bytes_moved": wire_bytes + broadcast_bytes,
        "staleness": hist_json(rec.metrics().histogram_by_name(names::STALENESS_ROUNDS)),
        "staleness_max_recorded": 0u64,
        "client_compute_seconds": hist_json(rec.metrics().histogram_by_name(names::CLIENT_COMPUTE_SECONDS)),
        "aggregate_seconds": hist_json(rec.metrics().histogram_by_name(names::AGGREGATE_SECONDS)),
        "eval_seconds": hist_json(rec.metrics().histogram_by_name(names::EVAL_SECONDS)),
        "dispatch_chunks": dispatch_chunks,
        "dispatch_steals": dispatch_steals,
        "dispatch_imbalance": dispatch_imbalance,
    }))
}

/// Shape of the train-bound scenario at a scale:
/// `(clients, samples_per_client, hidden_dim, batch)`.
pub fn train_shape(scale: Scale) -> (usize, usize, usize, usize) {
    match scale {
        Scale::Smoke => (8, 64, 128, 32),
        Scale::Scaled | Scale::Paper => (16, 128, 256, 64),
    }
}

/// Local epochs every client of the train-bound scenario runs per round.
pub const TRAIN_EPOCHS: usize = 2;

/// Runs the train-bound dense-compute scenario: full participation of a
/// small population over a *wide* MLP (784 → [`train_shape`] hidden units →
/// 10) with large mini-batches, so nearly all of the round's wall time is
/// spent inside the local-SGD forward/backward kernels rather than in
/// dispatch, aggregation or evaluation. This is the row the compute-kernel
/// roadmap work (blocked GEMM, fused layers, activation arena) is judged
/// against; besides the standard keys it reports `samples_per_sec` and
/// `steps_per_sec` — SGD-step throughput derived from the run history
/// (every client holds exactly `samples_per_client` samples, so the step
/// count per local epoch is `ceil(samples_per_client / batch)`).
pub fn run_train_scenario(scale: Scale, rounds: usize) -> TensorResult<Value> {
    const SEED: u64 = 7331;
    let (num_clients, samples_per_client, hidden_dim, batch) = train_shape(scale);
    let config = FedConfig {
        num_clients,
        participation: Participation::Fraction(1.0),
        local_epochs: TRAIN_EPOCHS,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(batch),
        local_learning_rate: 0.05,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim,
            num_classes: 10,
        },
        seed: SEED,
        eval_subset: usize::MAX,
    };
    let (train, test) =
        SyntheticDataset::Mnist.generate(num_clients * samples_per_client, 200, SEED);
    let partition = DataDistribution::Iid.partition(&train, num_clients, SEED);
    let mut engine = RoundEngine::new(
        config,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SyncRounds,
    )?
    .eval_subset(0.25)
    .with_telemetry(Box::new(Recorder::new()));

    let start = Instant::now();
    engine.run_rounds(rounds)?;
    let wall_seconds = start.elapsed().as_secs_f64();
    let final_accuracy = engine.history().final_accuracy();
    let telemetry = engine.take_telemetry();
    let history = engine.into_history();
    let rec = telemetry
        .as_any()
        .and_then(|a| a.downcast_ref::<Recorder>())
        .expect("scenario telemetry is a Recorder");

    let (upload_bytes, wire_bytes, dense_wire_ratio) = upload_fields(rec);
    let broadcast_bytes = counter(rec, names::BROADCAST_FLOATS_TOTAL) * 4;
    let staleness_max = history.records.iter().map(|r| r.staleness_max).max();
    let (dispatch_chunks, dispatch_steals, dispatch_imbalance) = dispatch_fields(rec);
    let total_samples: usize = history.records.iter().map(|r| r.samples_processed).sum();
    let steps_per_epoch = samples_per_client.div_ceil(batch);
    let total_steps = history.total_local_epochs() * steps_per_epoch;
    Ok(json!({
        "name": format!("train-bound/mlp-784x{hidden_dim}x10"),
        "scheduler": SchedulerKind::Sync.label(),
        "distribution": DataDistribution::Iid.label(),
        "num_clients": num_clients,
        "hidden_dim": hidden_dim,
        "batch_size": batch,
        "local_epochs": TRAIN_EPOCHS,
        "rounds": rounds,
        "wall_seconds": wall_seconds,
        "rounds_per_sec": rounds as f64 / wall_seconds.max(1e-12),
        "samples_per_sec": total_samples as f64 / wall_seconds.max(1e-12),
        "steps_per_sec": total_steps as f64 / wall_seconds.max(1e-12),
        "final_accuracy": final_accuracy as f64,
        "client_updates": counter(rec, names::CLIENT_UPDATES_TOTAL),
        "upload_bytes": upload_bytes,
        "broadcast_bytes": broadcast_bytes,
        "wire_bytes": wire_bytes,
        "dense_wire_ratio": dense_wire_ratio,
        "bytes_moved": wire_bytes + broadcast_bytes,
        "staleness": hist_json(rec.metrics().histogram_by_name(names::STALENESS_ROUNDS)),
        "staleness_max_recorded": staleness_max.unwrap_or(0),
        "client_compute_seconds": hist_json(rec.metrics().histogram_by_name(names::CLIENT_COMPUTE_SECONDS)),
        "aggregate_seconds": hist_json(rec.metrics().histogram_by_name(names::AGGREGATE_SECONDS)),
        "eval_seconds": hist_json(rec.metrics().histogram_by_name(names::EVAL_SECONDS)),
        "dispatch_chunks": dispatch_chunks,
        "dispatch_steals": dispatch_steals,
        "dispatch_imbalance": dispatch_imbalance,
    }))
}

/// Client population of the spill-store scenario at each scale: a
/// seconds-scale stand-in for CI at `Smoke`, the full million-client
/// population at `Scaled` and `Paper`.
pub fn spill_population(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 10_000,
        Scale::Scaled | Scale::Paper => 1_000_000,
    }
}

/// Label-sorted shared-index partition (the `scale_smoke` shape): clients
/// own overlapping windows of the label-ordered sample list, so every
/// client sees a skewed non-IID slice without the dataset growing with the
/// population.
fn shared_non_iid_partition(
    train: &Dataset,
    num_clients: usize,
    samples_per_client: usize,
) -> Partition {
    let mut order: Vec<usize> = (0..train.len()).collect();
    order.sort_by_key(|&i| train.label(i));
    let span = train.len() - samples_per_client;
    Partition::new(
        (0..num_clients)
            .map(|c| {
                let start = (c * 17) % span;
                order[start..start + samples_per_client].to_vec()
            })
            .collect(),
    )
}

/// Runs the large-population spill-store scenario: [`spill_population`]
/// clients over a label-skewed shared dataset, a ~1 000-client cohort per
/// round, the spill-to-disk store under a client-state budget too small to
/// hold one cohort resident, and hierarchical (per-shard tree)
/// aggregation. The row carries the standard scenario keys plus the store
/// counters and the process peak RSS — this is the number the
/// million-client roadmap item is judged against.
pub fn run_spill_scenario(scale: Scale, rounds: usize) -> TensorResult<Value> {
    const SAMPLES_PER_CLIENT: usize = 20;
    let num_clients = spill_population(scale);
    // ~1% cohorts at smoke scale, capped at the paper-scale 1 000-client
    // cohort for the million-client run.
    let cohort = (num_clients / 100).clamp(1, 1_000);
    // Small enough that a single cohort (~94 KB of state per client at
    // d = 7 850) overflows it, so every round exercises spill + reload.
    let budget_bytes: u64 = match scale {
        Scale::Smoke => 8 * 1024 * 1024,
        Scale::Scaled | Scale::Paper => 64 * 1024 * 1024,
    };
    let config = FedConfig {
        num_clients,
        participation: Participation::Count(cohort),
        local_epochs: 1,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(20),
        local_learning_rate: 0.05,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed: 2024,
        eval_subset: usize::MAX,
    };
    let (train, test) = SyntheticDataset::Mnist.generate(2_000, 400, 2024);
    let partition = shared_non_iid_partition(&train, num_clients, SAMPLES_PER_CLIENT);
    let store = StoreConfig::Spill {
        num_shards: 512,
        budget_bytes,
        dir: None,
    };
    let mut engine = RoundEngine::new_with_store(
        config,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SyncRounds,
        &store,
    )?
    .with_aggregation(AggregationMode::Hierarchical)
    .eval_subset(0.25)
    .with_telemetry(Box::new(Recorder::new()));

    let start = Instant::now();
    engine.run_rounds(rounds)?;
    let wall_seconds = start.elapsed().as_secs_f64();
    let final_accuracy = engine.history().final_accuracy();
    let stats = engine.store().stats();
    let resident_bytes = engine.store().resident_bytes();
    let telemetry = engine.take_telemetry();
    let history = engine.into_history();
    let rec = telemetry
        .as_any()
        .and_then(|a| a.downcast_ref::<Recorder>())
        .expect("scenario telemetry is a Recorder");

    let (upload_bytes, wire_bytes, dense_wire_ratio) = upload_fields(rec);
    let broadcast_bytes = counter(rec, names::BROADCAST_FLOATS_TOTAL) * 4;
    let staleness_max = history.records.iter().map(|r| r.staleness_max).max();
    let (dispatch_chunks, dispatch_steals, dispatch_imbalance) = dispatch_fields(rec);
    Ok(json!({
        "name": format!("spill/non-IID/{num_clients}-clients"),
        "scheduler": SchedulerKind::Sync.label(),
        "distribution": DataDistribution::NonIidShards.label(),
        "store": "spill",
        "num_clients": num_clients,
        "budget_bytes": budget_bytes,
        "rounds": rounds,
        "wall_seconds": wall_seconds,
        "rounds_per_sec": rounds as f64 / wall_seconds.max(1e-12),
        "final_accuracy": final_accuracy as f64,
        "client_updates": counter(rec, names::CLIENT_UPDATES_TOTAL),
        "upload_bytes": upload_bytes,
        "broadcast_bytes": broadcast_bytes,
        "wire_bytes": wire_bytes,
        "dense_wire_ratio": dense_wire_ratio,
        "bytes_moved": wire_bytes + broadcast_bytes,
        "staleness": hist_json(rec.metrics().histogram_by_name(names::STALENESS_ROUNDS)),
        "staleness_max_recorded": staleness_max.unwrap_or(0),
        "client_compute_seconds": hist_json(rec.metrics().histogram_by_name(names::CLIENT_COMPUTE_SECONDS)),
        "aggregate_seconds": hist_json(rec.metrics().histogram_by_name(names::AGGREGATE_SECONDS)),
        "eval_seconds": hist_json(rec.metrics().histogram_by_name(names::EVAL_SECONDS)),
        "dispatch_chunks": dispatch_chunks,
        "dispatch_steals": dispatch_steals,
        "dispatch_imbalance": dispatch_imbalance,
        "shard_folds": counter(rec, names::SHARD_FOLDS_TOTAL),
        "store_materializations": stats.materializations,
        "store_spill_writes": stats.spill_writes,
        "store_spill_loads": stats.spill_loads,
        "store_evictions": stats.evictions,
        "store_resident_bytes": resident_bytes,
        "peak_rss_bytes": peak_rss_bytes().unwrap_or(0),
    }))
}

/// Measures hook overhead on the sync/IID scenario: the same seeded run
/// with the default no-op hook (twice — the rerun bounds timing noise) and
/// with a full [`Recorder`]. Percentages are relative to the first no-op
/// run; the no-op rerun delta is the noise floor the ≤ 2 % overhead claim
/// is judged against.
pub fn overhead_check(scale: Scale, rounds: usize) -> TensorResult<Value> {
    let setting = base_setting(DataDistribution::Iid, scale);
    let time_run = |telemetry: Option<Box<Recorder>>| -> TensorResult<f64> {
        let algorithm = FedAdmm::new(SUBSTRATE_RHO, ServerStepSize::Constant(1.0));
        let mut engine = setting.build_sim(algorithm)?;
        if let Some(rec) = telemetry {
            engine = engine.with_telemetry(rec);
        }
        let start = Instant::now();
        engine.run_rounds(rounds)?;
        Ok(start.elapsed().as_secs_f64())
    };
    let noop_a = time_run(None)?;
    let noop_b = time_run(None)?;
    let recorder = time_run(Some(Box::new(Recorder::new())))?;
    let pct = |t: f64| (t - noop_a) / noop_a.max(1e-12) * 100.0;
    Ok(json!({
        "rounds": rounds,
        "noop_seconds": noop_a,
        "noop_rerun_pct": pct(noop_b),
        "recorder_seconds": recorder,
        "recorder_pct": pct(recorder),
    }))
}

/// Builds the complete snapshot document for a scale.
pub fn build_snapshot(scale: Scale, rounds: usize) -> TensorResult<Value> {
    let mut scenarios = Vec::new();
    for spec in scenario_matrix() {
        scenarios.push((spec.name(), run_scenario(&spec, scale, rounds)?));
    }
    let spill = run_spill_scenario(scale, rounds)?;
    scenarios.push((spill["name"].as_str().unwrap_or("spill").to_string(), spill));
    let straggler = run_straggler_scenario(scale, rounds)?;
    scenarios.push((
        straggler["name"]
            .as_str()
            .unwrap_or("straggler")
            .to_string(),
        straggler,
    ));
    let wire = run_wire_scenario(scale, rounds)?;
    scenarios.push((wire["name"].as_str().unwrap_or("wire").to_string(), wire));
    let train = run_train_scenario(scale, rounds)?;
    scenarios.push((train["name"].as_str().unwrap_or("train").to_string(), train));
    let scenario_values: Vec<Value> = scenarios.into_iter().map(|(_, v)| v).collect();
    let overhead = overhead_check(scale, rounds)?;
    let dispatch_config = DispatchConfig::default();
    let created_unix = unix_now();
    let (y, m, d) = civil_from_unix(created_unix);
    Ok(json!({
        "schema_version": SCHEMA_VERSION,
        "created_unix": created_unix,
        "created_date": format!("{y:04}-{m:02}-{d:02}"),
        "git_sha": git_short_sha(),
        "scale": format!("{scale:?}").to_ascii_lowercase(),
        "rounds_per_scenario": rounds,
        "peak_rss_bytes": peak_rss_bytes(),
        "dispatch": {
            "workers": dispatch_config.resolved_workers(),
            "mode": dispatch_mode_label(dispatch_config.resolved_mode()),
        },
        "scenarios": Value::Array(scenario_values),
        "overhead": overhead,
    }))
}

/// Checks that `snapshot` matches the schema this binary writes.
pub fn validate_snapshot(snapshot: &Value) -> Result<(), String> {
    let version = snapshot["schema_version"]
        .as_u64()
        .ok_or("schema_version missing")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != expected {SCHEMA_VERSION}"
        ));
    }
    snapshot["git_sha"].as_str().ok_or("git_sha missing")?;
    snapshot["created_date"]
        .as_str()
        .filter(|d| d.len() == 10)
        .ok_or("created_date missing or malformed")?;
    let scenarios = snapshot["scenarios"]
        .as_array()
        .ok_or("scenarios missing")?;
    if scenarios.is_empty() {
        return Err("scenarios array is empty".to_string());
    }
    for s in scenarios {
        let name = s["name"].as_str().ok_or("scenario name missing")?;
        for key in ["rounds_per_sec", "wall_seconds", "final_accuracy"] {
            s[key]
                .as_f64()
                .ok_or_else(|| format!("{name}: {key} missing"))?;
        }
        for key in [
            "upload_bytes",
            "broadcast_bytes",
            "wire_bytes",
            "bytes_moved",
            "rounds",
        ] {
            s[key]
                .as_u64()
                .ok_or_else(|| format!("{name}: {key} missing"))?;
        }
        s["dense_wire_ratio"]
            .as_f64()
            .ok_or_else(|| format!("{name}: dense_wire_ratio missing"))?;
        for key in ["p50", "p90", "p99", "max"] {
            s["staleness"][key]
                .as_f64()
                .ok_or_else(|| format!("{name}: staleness.{key} missing"))?;
        }
        for key in ["dispatch_chunks", "dispatch_steals"] {
            s[key]
                .as_u64()
                .ok_or_else(|| format!("{name}: {key} missing"))?;
        }
        s["dispatch_imbalance"]
            .as_f64()
            .ok_or_else(|| format!("{name}: dispatch_imbalance missing"))?;
    }
    let straggler = scenarios
        .iter()
        .find(|s| {
            s["name"]
                .as_str()
                .is_some_and(|n| n.starts_with("straggler-skew/"))
        })
        .ok_or("no straggler-skew scenario present")?;
    straggler["straggler_epochs"]
        .as_u64()
        .filter(|&e| e > 1)
        .ok_or("straggler scenario: straggler_epochs missing or trivial")?;
    let train = scenarios
        .iter()
        .find(|s| {
            s["name"]
                .as_str()
                .is_some_and(|n| n.starts_with("train-bound/"))
        })
        .ok_or("no train-bound scenario present")?;
    for key in ["samples_per_sec", "steps_per_sec"] {
        train[key]
            .as_f64()
            .filter(|v| *v > 0.0)
            .ok_or_else(|| format!("train-bound scenario: {key} missing or zero"))?;
    }
    train["hidden_dim"]
        .as_u64()
        .filter(|&h| h >= 64)
        .ok_or("train-bound scenario: hidden_dim missing or not train-bound")?;
    let wire = scenarios
        .iter()
        .find(|s| s["name"].as_str().is_some_and(|n| n.starts_with("wire/")))
        .ok_or("no wire scenario present")?;
    wire["quantizer_bits"]
        .as_u64()
        .filter(|&b| (1..32).contains(&b))
        .ok_or("wire scenario: quantizer_bits missing or out of range")?;
    for key in [
        "plain_rounds_per_sec",
        "wire_overhead_pct",
        "dense_wire_ratio",
    ] {
        wire[key]
            .as_f64()
            .ok_or_else(|| format!("wire scenario: {key} missing"))?;
    }
    let ratio = wire["dense_wire_ratio"].as_f64().unwrap_or(0.0);
    if ratio < 2.0 {
        return Err(format!(
            "wire scenario dense/wire ratio {ratio:.2} — compression not engaged"
        ));
    }
    snapshot["dispatch"]["workers"]
        .as_u64()
        .ok_or("dispatch.workers missing")?;
    snapshot["dispatch"]["mode"]
        .as_str()
        .ok_or("dispatch.mode missing")?;
    let spill = scenarios
        .iter()
        .find(|s| s["store"].as_str() == Some("spill"))
        .ok_or("no spill-store scenario present")?;
    let clients = spill["num_clients"]
        .as_u64()
        .ok_or("spill scenario: num_clients missing")?;
    if clients < 10_000 {
        return Err(format!(
            "spill scenario covers only {clients} clients (>= 10000 required)"
        ));
    }
    for key in [
        "store_materializations",
        "store_spill_writes",
        "store_resident_bytes",
        "peak_rss_bytes",
        "budget_bytes",
    ] {
        spill[key]
            .as_u64()
            .ok_or_else(|| format!("spill scenario: {key} missing"))?;
    }
    for key in ["noop_rerun_pct", "recorder_pct"] {
        snapshot["overhead"][key]
            .as_f64()
            .ok_or_else(|| format!("overhead.{key} missing"))?;
    }
    Ok(())
}

/// Renders a per-scenario comparison of two snapshots (`b` relative to `a`).
pub fn diff_snapshots(a: &Value, b: &Value) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "snapshot diff: {} ({}) -> {} ({})\n",
        a["git_sha"].as_str().unwrap_or("?"),
        a["created_date"].as_str().unwrap_or("?"),
        b["git_sha"].as_str().unwrap_or("?"),
        b["created_date"].as_str().unwrap_or("?"),
    ));
    let empty = Vec::new();
    let scenarios_a = a["scenarios"].as_array().unwrap_or(&empty);
    let scenarios_b = b["scenarios"].as_array().unwrap_or(&empty);
    for sa in scenarios_a {
        let name = sa["name"].as_str().unwrap_or("?");
        let Some(sb) = scenarios_b
            .iter()
            .find(|s| s["name"].as_str() == Some(name))
        else {
            out.push_str(&format!("  {name:24} only in first snapshot\n"));
            continue;
        };
        let rps_a = sa["rounds_per_sec"].as_f64().unwrap_or(0.0);
        let rps_b = sb["rounds_per_sec"].as_f64().unwrap_or(0.0);
        let delta = if rps_a > 0.0 {
            (rps_b - rps_a) / rps_a * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {name:24} {rps_a:8.2} -> {rps_b:8.2} rounds/s ({delta:+6.1}%)  bytes {} -> {}\n",
            sa["bytes_moved"].as_u64().unwrap_or(0),
            sb["bytes_moved"].as_u64().unwrap_or(0),
        ));
    }
    let rss = |v: &Value| v["peak_rss_bytes"].as_u64().unwrap_or(0);
    out.push_str(&format!("  peak RSS {} -> {} bytes\n", rss(a), rss(b)));
    out
}

/// The file name a snapshot is written under: `BENCH_<date>_<sha>.json`.
pub fn snapshot_filename(snapshot: &Value) -> String {
    format!(
        "BENCH_{}_{}.json",
        snapshot["created_date"].as_str().unwrap_or("unknown"),
        snapshot["git_sha"].as_str().unwrap_or("nogit"),
    )
}

/// The workspace root (two levels above this crate's manifest).
pub fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root")
        .to_path_buf()
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Converts a unix timestamp to a `(year, month, day)` civil date (UTC) —
/// the standard days-from-epoch algorithm, hand-rolled to stay offline.
pub fn civil_from_unix(secs: u64) -> (i64, u32, u32) {
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = yoe + era * 400 + i64::from(month <= 2);
    (year, month, day)
}

/// Short commit hash of the checked-out revision, read straight from
/// `.git` (no subprocess); `"nogit"` when unavailable.
pub fn git_short_sha() -> String {
    let git = repo_root().join(".git");
    let head = match std::fs::read_to_string(git.join("HEAD")) {
        Ok(h) => h.trim().to_string(),
        Err(_) => return "nogit".to_string(),
    };
    let sha = if let Some(reference) = head.strip_prefix("ref: ") {
        let reference = reference.trim();
        match std::fs::read_to_string(git.join(reference)) {
            Ok(s) => s.trim().to_string(),
            // Loose ref absent — fall back to packed-refs.
            Err(_) => std::fs::read_to_string(git.join("packed-refs"))
                .ok()
                .and_then(|packed| {
                    packed.lines().find_map(|line| {
                        line.strip_suffix(reference)
                            .map(|sha| sha.trim().to_string())
                    })
                })
                .unwrap_or_default(),
        }
    } else {
        head
    };
    if sha.len() >= 7 && sha.bytes().all(|b| b.is_ascii_hexdigit()) {
        sha[..7].to_string()
    } else {
        "nogit".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_conversion_matches_known_dates() {
        assert_eq!(civil_from_unix(0), (1970, 1, 1));
        assert_eq!(civil_from_unix(86_399), (1970, 1, 1));
        assert_eq!(civil_from_unix(86_400), (1970, 1, 2));
        // 2000-02-29 (leap day): 951_782_400.
        assert_eq!(civil_from_unix(951_782_400), (2000, 2, 29));
        // 2026-08-08: 1_786_147_200.
        assert_eq!(civil_from_unix(1_786_147_200), (2026, 8, 8));
    }

    #[test]
    fn matrix_covers_four_scenarios() {
        let names: Vec<String> = scenario_matrix().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
        assert!(names.iter().any(|n| n == "sync/IID"));
        assert!(names.iter().any(|n| n.starts_with("semi-async/")));
    }

    #[test]
    fn spill_population_scales_to_a_million_clients() {
        assert_eq!(spill_population(Scale::Smoke), 10_000);
        assert_eq!(spill_population(Scale::Scaled), 1_000_000);
        assert_eq!(spill_population(Scale::Paper), 1_000_000);
    }

    #[test]
    fn git_sha_is_short_hex_or_nogit() {
        let sha = git_short_sha();
        assert!(
            sha == "nogit" || (sha.len() == 7 && sha.bytes().all(|b| b.is_ascii_hexdigit())),
            "unexpected sha {sha:?}"
        );
    }

    #[test]
    fn snapshot_builds_and_validates_at_tiny_scale() {
        let snapshot = build_snapshot(Scale::Smoke, 2).unwrap();
        validate_snapshot(&snapshot).expect("fresh snapshot validates");
        let name = snapshot_filename(&snapshot);
        assert!(name.starts_with("BENCH_") && name.ends_with(".json"));
        // Round-trips through the serializer.
        let text = serde_json::to_string_pretty(&snapshot).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        validate_snapshot(&back).unwrap();
        // The semi-async scenarios must actually observe staleness events.
        let scenarios = back["scenarios"].as_array().unwrap();
        assert_eq!(
            scenarios.len(),
            8,
            "4 matrix cells + the spill, straggler, wire and train-bound scenarios"
        );
        let semi = scenarios
            .iter()
            .find(|s| s["name"].as_str() == Some("semi-async/IID"))
            .unwrap();
        assert!(semi["staleness"]["count"].as_u64().unwrap() > 0);
        // And all scenarios moved bytes in both directions.
        for s in scenarios {
            assert!(s["upload_bytes"].as_u64().unwrap() > 0);
            assert!(s["broadcast_bytes"].as_u64().unwrap() > 0);
        }
        // The spill scenario worked lazily over the large population.
        let spill = scenarios
            .iter()
            .find(|s| s["store"].as_str() == Some("spill"))
            .unwrap();
        assert_eq!(spill["num_clients"].as_u64().unwrap(), 10_000);
        assert!(spill["store_materializations"].as_u64().unwrap() > 0);
        assert!(spill["shard_folds"].as_u64().unwrap() > 0);
        // The straggler-skew scenario exercises the dispatch pool under
        // telemetry, so its chunk counter must be live.
        let straggler = scenarios
            .iter()
            .find(|s| {
                s["name"]
                    .as_str()
                    .is_some_and(|n| n.starts_with("straggler-skew/"))
            })
            .unwrap();
        assert_eq!(straggler["num_clients"].as_u64().unwrap(), 96);
        assert!(straggler["dispatch_chunks"].as_u64().unwrap() > 0);
        assert!(straggler["dispatch_imbalance"].as_f64().unwrap() >= 1.0);
        assert!(back["dispatch"]["workers"].as_u64().unwrap() >= 1);
        // The wire scenario actually compressed its uploads (~4× at 8 bits)
        // and reports both legs of the overhead comparison.
        let wire = scenarios
            .iter()
            .find(|s| s["name"].as_str().is_some_and(|n| n.starts_with("wire/")))
            .unwrap();
        let ratio = wire["dense_wire_ratio"].as_f64().unwrap();
        assert!((3.5..4.5).contains(&ratio), "8-bit ratio was {ratio}");
        assert!(wire["wire_bytes"].as_u64().unwrap() < wire["upload_bytes"].as_u64().unwrap());
        assert!(wire["plain_rounds_per_sec"].as_f64().unwrap() > 0.0);
        assert!(wire["wire_overhead_pct"].as_f64().unwrap().is_finite());
        // The train-bound scenario reports live SGD-step throughput and
        // stays consistent with its own step accounting: steps/sec exceeds
        // rounds/sec by the per-round step count.
        let train = scenarios
            .iter()
            .find(|s| {
                s["name"]
                    .as_str()
                    .is_some_and(|n| n.starts_with("train-bound/"))
            })
            .unwrap();
        assert!(train["samples_per_sec"].as_f64().unwrap() > 0.0);
        let steps_per_sec = train["steps_per_sec"].as_f64().unwrap();
        let rounds_per_sec = train["rounds_per_sec"].as_f64().unwrap();
        assert!(steps_per_sec > rounds_per_sec);
        // Every dense scenario still reports wire bytes — equal to the
        // classical 4·floats accounting when the path is off.
        for s in scenarios.iter().filter(|s| s["dense_wire_ratio"] == 1.0) {
            assert_eq!(
                s["wire_bytes"].as_u64().unwrap(),
                s["upload_bytes"].as_u64().unwrap()
            );
        }
    }

    #[test]
    fn validation_rejects_wrong_schema_and_diff_renders() {
        let mut snapshot = build_snapshot(Scale::Smoke, 1).unwrap();
        let other = snapshot.clone();
        let text = diff_snapshots(&snapshot, &other);
        assert!(text.contains("rounds/s"));
        assert!(text.contains("sync/IID"));
        if let Value::Object(fields) = &mut snapshot {
            for (k, v) in fields.iter_mut() {
                if k == "schema_version" {
                    *v = json!(999u64);
                }
            }
        }
        assert!(validate_snapshot(&snapshot).is_err());
        assert!(validate_snapshot(&json!({"not": "a snapshot"})).is_err());
    }
}
