//! The dense, contiguous, row-major `f32` tensor type.

use crate::error::{TensorError, TensorResult};
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// This is the single array type used throughout the reproduction: model
/// activations, gradients, convolution kernels, and datasets are all
/// `Tensor`s. Flattened model parameters use plain `Vec<f32>` (see
/// [`crate::vecops`]) because the federated algorithms treat parameters as
/// opaque vectors in ℝ^d.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> TensorResult<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.num_elements() {
            return Err(TensorError::DataShapeMismatch {
                data_len: data.len(),
                shape_len: shape.num_elements(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a zero-filled tensor of the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a one-filled tensor of the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![1.0; n],
        }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Returns the tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    pub fn get(&self, index: &[usize]) -> TensorResult<f32> {
        let off = self.shape.flat_index(index)?;
        Ok(self.data[off])
    }

    /// Writes the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) -> TensorResult<()> {
        let off = self.shape.flat_index(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy reshaped to `dims` (same element count required).
    pub fn reshape(&self, dims: &[usize]) -> TensorResult<Tensor> {
        let new_shape = Shape::new(dims);
        if new_shape.num_elements() != self.len() {
            return Err(TensorError::InvalidReshape {
                from: self.len(),
                to: new_shape.num_elements(),
            });
        }
        Ok(Tensor {
            shape: new_shape,
            data: self.data.clone(),
        })
    }

    /// Reshapes in place (same element count required).
    ///
    /// Allocation-free once the shape's dimension list has capacity for
    /// `dims`.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> TensorResult<()> {
        let elements: usize = dims.iter().product();
        if elements != self.len() {
            return Err(TensorError::InvalidReshape {
                from: self.len(),
                to: elements,
            });
        }
        self.shape.set_dims(dims);
        Ok(())
    }

    /// Resizes the tensor to `dims`, keeping and reusing the existing
    /// buffer. New elements (if the tensor grows) are zero; existing
    /// element values are *not* meaningful after a resize — this is a
    /// scratch-buffer primitive for callers about to overwrite the
    /// contents. Allocation-free once the buffer has capacity for the
    /// largest shape it has seen.
    pub fn resize_in_place(&mut self, dims: &[usize]) {
        let elements: usize = dims.iter().product();
        self.data.resize(elements, 0.0);
        self.shape.set_dims(dims);
    }

    /// Swaps in `data` as the tensor's buffer under shape `dims` and
    /// returns the previous buffer.
    ///
    /// This lets a caller move an external `Vec<f32>` into tensor form and
    /// back without copying — the round-trip partner of [`Tensor::into_vec`]
    /// for reusable scratch buffers.
    pub fn replace_data(&mut self, data: Vec<f32>, dims: &[usize]) -> TensorResult<Vec<f32>> {
        let elements: usize = dims.iter().product();
        if data.len() != elements {
            return Err(TensorError::DataShapeMismatch {
                data_len: data.len(),
                shape_len: elements,
            });
        }
        self.shape.set_dims(dims);
        Ok(std::mem::replace(&mut self.data, data))
    }

    /// Elementwise addition, producing a new tensor.
    pub fn add(&self, other: &Tensor) -> TensorResult<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction, producing a new tensor.
    pub fn sub(&self, other: &Tensor) -> TensorResult<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) multiplication, producing a new tensor.
    pub fn mul(&self, other: &Tensor) -> TensorResult<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise division, producing a new tensor.
    pub fn div(&self, other: &Tensor) -> TensorResult<Tensor> {
        self.zip_map(other, |a, b| a / b)
    }

    /// In-place elementwise addition: `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) -> TensorResult<()> {
        self.zip_assign(other, |a, b| *a += b)
    }

    /// In-place elementwise subtraction: `self -= other`.
    pub fn sub_assign(&mut self, other: &Tensor) -> TensorResult<()> {
        self.zip_assign(other, |a, b| *a -= b)
    }

    /// In-place `self += alpha * other` (BLAS `axpy`).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> TensorResult<()> {
        self.zip_assign(other, |a, b| *a += alpha * b)
    }

    /// Multiplies every element by `alpha`, producing a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// In-place scalar multiplication.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Adds a scalar to every element, producing a new tensor.
    pub fn add_scalar(&self, alpha: f32) -> Tensor {
        self.map(|x| x + alpha)
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in the flattened buffer.
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        let mut best_val = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_val {
                best_val = v;
                best = i;
            }
        }
        best
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Dot product of two tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> TensorResult<f32> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Transposes a rank-2 tensor.
    pub fn transpose(&self) -> TensorResult<Tensor> {
        let (rows, cols) = self.shape.as_matrix()?;
        let mut out = Tensor::zeros(&[cols, rows]);
        for r in 0..rows {
            for c in 0..cols {
                out.data[c * rows + r] = self.data[r * cols + c];
            }
        }
        Ok(out)
    }

    /// Extracts row `r` of a rank-2 tensor as a rank-1 tensor.
    pub fn row(&self, r: usize) -> TensorResult<Tensor> {
        let (rows, cols) = self.shape.as_matrix()?;
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![r],
                shape: self.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: Shape::new(&[cols]),
            data: self.data[r * cols..(r + 1) * cols].to_vec(),
        })
    }

    /// Returns a slice of the buffer for the `i`-th outermost sub-tensor.
    ///
    /// For a tensor of shape `[n, c, h, w]`, `outer_slice(i)` returns the
    /// contiguous `c*h*w` elements of sample `i`. This is the zero-copy path
    /// used by batched layers.
    pub fn outer_slice(&self, i: usize) -> TensorResult<&[f32]> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let outer = self.shape.dim(0);
        if i >= outer {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.dims().to_vec(),
            });
        }
        let inner: usize = self.dims()[1..].iter().product();
        Ok(&self.data[i * inner..(i + 1) * inner])
    }

    /// Stacks rank-`k` tensors of identical shape into a rank-`k+1` tensor.
    pub fn stack(tensors: &[Tensor]) -> TensorResult<Tensor> {
        if tensors.is_empty() {
            return Err(TensorError::InvalidArgument(
                "cannot stack an empty list of tensors".into(),
            ));
        }
        let first_shape = tensors[0].shape.clone();
        for t in tensors.iter().skip(1) {
            if !t.shape.same_as(&first_shape) {
                return Err(TensorError::ShapeMismatch {
                    left: first_shape.dims().to_vec(),
                    right: t.dims().to_vec(),
                });
            }
        }
        let mut dims = vec![tensors.len()];
        dims.extend_from_slice(first_shape.dims());
        let mut data = Vec::with_capacity(tensors.len() * first_shape.num_elements());
        for t in tensors {
            data.extend_from_slice(&t.data);
        }
        Tensor::from_vec(data, &dims)
    }

    fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> TensorResult<Tensor> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    fn zip_assign(&mut self, other: &Tensor, f: impl Fn(&mut f32, f32)) -> TensorResult<()> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            f(a, b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[2]).is_ok());
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn eye_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(t.get(&[1, 2]).unwrap(), 0.0);
        assert_eq!(t.sum(), 3.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 5.0);
        assert_eq!(t.data()[5], 5.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[6.0, 12.0]);
    }

    #[test]
    fn scale_and_map() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], &[4]).unwrap();
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.mean(), 0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.argmax(), 2);
    }

    #[test]
    fn norm_and_dot() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert!((a.norm() - 5.0).abs() < 1e-6);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 11.0);
    }

    #[test]
    fn transpose_2d() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.get(&[0, 1]).unwrap(), 4.0);
        assert_eq!(t.get(&[2, 0]).unwrap(), 3.0);
    }

    #[test]
    fn reshape_checks_count() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(a.reshape(&[3, 2]).is_ok());
        assert!(a.reshape(&[6]).is_ok());
        assert!(a.reshape(&[7]).is_err());
    }

    #[test]
    fn row_extraction() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(a.row(1).unwrap().data(), &[3.0, 4.0]);
        assert!(a.row(2).is_err());
    }

    #[test]
    fn outer_slice_views() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 2, 2]).unwrap();
        assert_eq!(a.outer_slice(1).unwrap(), &[4.0, 5.0, 6.0, 7.0]);
        assert!(a.outer_slice(3).is_err());
    }

    #[test]
    fn stack_tensors() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let s = Tensor::stack(&[a, b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn stack_empty_or_mismatched_fails() {
        assert!(Tensor::stack(&[]).is_err());
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(Tensor::stack(&[a, b]).is_err());
    }

    proptest! {
        /// add is commutative and sub(add(a,b), b) == a (elementwise, exact
        /// for these small integer-valued floats).
        #[test]
        fn prop_add_sub_roundtrip(v in proptest::collection::vec(-100i32..100, 1..64)) {
            let n = v.len();
            let a = Tensor::from_vec(v.iter().map(|&x| x as f32).collect(), &[n]).unwrap();
            let b = Tensor::ones(&[n]);
            let c = a.add(&b).unwrap().sub(&b).unwrap();
            prop_assert_eq!(c.data(), a.data());
            let ab = a.add(&b).unwrap();
            let ba = b.add(&a).unwrap();
            prop_assert_eq!(ab.data(), ba.data());
        }

        /// The L2 norm is absolutely homogeneous: ||αx|| = |α|·||x||.
        #[test]
        fn prop_norm_homogeneous(v in proptest::collection::vec(-10.0f32..10.0, 1..32), alpha in -4.0f32..4.0) {
            let n = v.len();
            let a = Tensor::from_vec(v, &[n]).unwrap();
            let lhs = a.scale(alpha).norm();
            let rhs = alpha.abs() * a.norm();
            prop_assert!((lhs - rhs).abs() <= 1e-3 * (1.0 + rhs.abs()));
        }

        /// Transposing twice is the identity.
        #[test]
        fn prop_transpose_involution(rows in 1usize..6, cols in 1usize..6) {
            let data: Vec<f32> = (0..rows * cols).map(|x| x as f32).collect();
            let a = Tensor::from_vec(data, &[rows, cols]).unwrap();
            let tt = a.transpose().unwrap().transpose().unwrap();
            prop_assert_eq!(tt, a);
        }

        /// Dot product against self equals squared norm.
        #[test]
        fn prop_dot_self_is_norm_sq(v in proptest::collection::vec(-5.0f32..5.0, 1..32)) {
            let n = v.len();
            let a = Tensor::from_vec(v, &[n]).unwrap();
            let d = a.dot(&a).unwrap();
            let nrm = a.norm();
            prop_assert!((d - nrm * nrm).abs() <= 1e-3 * (1.0 + d.abs()));
        }
    }
}
