//! BLAS-1 style helpers on plain `&[f32]` / `&mut [f32]` slices.
//!
//! The federated algorithms in `fedadmm-core` treat model parameters, dual
//! variables and control variates as opaque vectors in ℝ^d. These helpers
//! are the shared, allocation-free kernels they are built on. All functions
//! panic on length mismatch — length mismatches between parameter vectors
//! are programming errors, not recoverable conditions.

/// `y += alpha * x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y = x` (copy).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn copy(x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "copy length mismatch");
    y.copy_from_slice(x);
}

/// `x *= alpha`.
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dot product `⟨x, y⟩`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
pub fn norm_sq(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>()
}

/// Euclidean distance `‖x − y‖₂`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn dist(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dist length mismatch");
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt()
}

/// `out = x - y`, overwriting `out`.
///
/// # Panics
/// Panics on any length mismatch.
pub fn sub_into(x: &[f32], y: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "sub_into length mismatch");
    assert_eq!(x.len(), out.len(), "sub_into output length mismatch");
    for ((o, a), b) in out.iter_mut().zip(x.iter()).zip(y.iter()) {
        *o = a - b;
    }
}

/// `out = x + y`, overwriting `out`.
///
/// # Panics
/// Panics on any length mismatch.
pub fn add_into(x: &[f32], y: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "add_into length mismatch");
    assert_eq!(x.len(), out.len(), "add_into output length mismatch");
    for ((o, a), b) in out.iter_mut().zip(x.iter()).zip(y.iter()) {
        *o = a + b;
    }
}

/// Returns `x - y` as a freshly allocated vector, writing each element
/// exactly once (no intermediate zero-fill).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn sub_new(x: &[f32], y: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), y.len(), "sub_new length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a - b).collect()
}

/// Returns `x + y` as a freshly allocated vector, writing each element
/// exactly once (no intermediate zero-fill).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn add_new(x: &[f32], y: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), y.len(), "add_new length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a + b).collect()
}

/// Fused multi-`axpy`: `out[i] += Σ_k alphas[k] · xs[k][i]` in a single
/// pass over `out`.
///
/// Compared to one `axpy` sweep per term this touches `out` once instead of
/// `k` times — the server-aggregation hot path of the federated algorithms.
///
/// # Panics
/// Panics if `alphas.len() != xs.len()` or any `xs[k].len() != out.len()`.
pub fn axpy_fused(alphas: &[f32], xs: &[&[f32]], out: &mut [f32]) {
    assert_eq!(alphas.len(), xs.len(), "axpy_fused terms length mismatch");
    for x in xs {
        assert_eq!(x.len(), out.len(), "axpy_fused length mismatch");
    }
    match (alphas, xs) {
        ([], []) => {}
        ([a], [x]) => axpy(*a, x, out),
        _ => {
            for (i, o) in out.iter_mut().enumerate() {
                let mut acc = *o;
                for (&a, x) in alphas.iter().zip(xs.iter()) {
                    acc += a * x[i];
                }
                *o = acc;
            }
        }
    }
}

/// Fused weighted sum: `out[i] = Σ_k alphas[k] · xs[k][i]` in a single
/// pass over `out` (overwrites `out`; no zero-fill needed).
///
/// # Panics
/// Panics if `alphas.len() != xs.len()` or any `xs[k].len() != out.len()`.
pub fn weighted_sum_into(alphas: &[f32], xs: &[&[f32]], out: &mut [f32]) {
    assert_eq!(
        alphas.len(),
        xs.len(),
        "weighted_sum_into terms length mismatch"
    );
    for x in xs {
        assert_eq!(x.len(), out.len(), "weighted_sum_into length mismatch");
    }
    if xs.is_empty() {
        zero(out);
        return;
    }
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for (&a, x) in alphas.iter().zip(xs.iter()) {
            acc += a * x[i];
        }
        *o = acc;
    }
}

/// `x.iter().sum()` of absolute values (L1 norm).
pub fn norm_l1(x: &[f32]) -> f32 {
    x.iter().map(|v| v.abs()).sum()
}

/// Fills `x` with zeros.
pub fn zero(x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi = 0.0;
    }
}

/// Elementwise mean of several equally sized vectors.
///
/// Returns an empty vector if `vectors` is empty.
///
/// # Panics
/// Panics if the vectors have differing lengths.
pub fn mean_of(vectors: &[&[f32]]) -> Vec<f32> {
    if vectors.is_empty() {
        return Vec::new();
    }
    let d = vectors[0].len();
    let mut out = vec![0.0f32; d];
    for v in vectors {
        assert_eq!(v.len(), d, "mean_of length mismatch");
        for (o, x) in out.iter_mut().zip(v.iter()) {
            *o += x;
        }
    }
    let inv = 1.0 / vectors.len() as f32;
    for o in out.iter_mut() {
        *o *= inv;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_mismatch_panics() {
        let x = [1.0];
        let mut y = [1.0, 2.0];
        axpy(1.0, &x, &mut y);
    }

    #[test]
    fn dot_norm_dist() {
        let x = [3.0, 4.0];
        let y = [0.0, 0.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm(&x), 5.0);
        assert_eq!(norm_sq(&x), 25.0);
        assert_eq!(dist(&x, &y), 5.0);
        assert_eq!(norm_l1(&[-1.0, 2.0]), 3.0);
    }

    #[test]
    fn sub_add_into() {
        let x = [5.0, 7.0];
        let y = [2.0, 3.0];
        let mut out = [0.0; 2];
        sub_into(&x, &y, &mut out);
        assert_eq!(out, [3.0, 4.0]);
        add_into(&x, &y, &mut out);
        assert_eq!(out, [7.0, 10.0]);
    }

    #[test]
    fn sub_add_new_match_the_into_variants() {
        let x = [5.0, 7.0];
        let y = [2.0, 3.0];
        assert_eq!(sub_new(&x, &y), vec![3.0, 4.0]);
        assert_eq!(add_new(&x, &y), vec![7.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "sub_new length mismatch")]
    fn sub_new_mismatch_panics() {
        sub_new(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_fused_matches_sequential_axpys() {
        let xs: Vec<Vec<f32>> = vec![
            vec![1.0, 2.0, 3.0],
            vec![-1.0, 0.5, 2.0],
            vec![4.0, 4.0, 4.0],
        ];
        let alphas = [0.5, 2.0, -1.0];
        let mut fused = vec![1.0f32, 1.0, 1.0];
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        axpy_fused(&alphas, &refs, &mut fused);
        let mut sequential = vec![1.0f32, 1.0, 1.0];
        for (&a, x) in alphas.iter().zip(xs.iter()) {
            axpy(a, x, &mut sequential);
        }
        for (f, s) in fused.iter().zip(sequential.iter()) {
            assert!((f - s).abs() < 1e-6);
        }
        // Degenerate arities.
        let mut one = vec![0.0f32; 3];
        axpy_fused(&[2.0], &[&xs[0]], &mut one);
        assert_eq!(one, vec![2.0, 4.0, 6.0]);
        axpy_fused(&[], &[], &mut one);
        assert_eq!(one, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn weighted_sum_into_overwrites() {
        let a = [1.0, 2.0];
        let b = [3.0, 6.0];
        let mut out = [9.0, 9.0];
        weighted_sum_into(&[0.5, 0.5], &[&a, &b], &mut out);
        assert_eq!(out, [2.0, 4.0]);
        weighted_sum_into(&[], &[], &mut out);
        assert_eq!(out, [0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "axpy_fused length mismatch")]
    fn axpy_fused_mismatch_panics() {
        let mut out = [0.0f32; 2];
        axpy_fused(&[1.0], &[&[1.0, 2.0, 3.0][..]], &mut out);
    }

    #[test]
    fn copy_scale_zero() {
        let x = [1.0, 2.0];
        let mut y = [0.0, 0.0];
        copy(&x, &mut y);
        assert_eq!(y, [1.0, 2.0]);
        scale(3.0, &mut y);
        assert_eq!(y, [3.0, 6.0]);
        zero(&mut y);
        assert_eq!(y, [0.0, 0.0]);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0, 2.0];
        let b = [3.0, 6.0];
        let m = mean_of(&[&a, &b]);
        assert_eq!(m, vec![2.0, 4.0]);
        assert!(mean_of(&[]).is_empty());
    }

    proptest! {
        /// axpy then axpy with the negated coefficient restores the vector
        /// (up to floating-point error).
        #[test]
        fn prop_axpy_inverse(
            x in proptest::collection::vec(-10.0f32..10.0, 1..64),
            alpha in -3.0f32..3.0,
        ) {
            let mut y = vec![1.0f32; x.len()];
            let orig = y.clone();
            axpy(alpha, &x, &mut y);
            axpy(-alpha, &x, &mut y);
            for (a, b) in y.iter().zip(orig.iter()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }

        /// Cauchy–Schwarz: |⟨x,y⟩| ≤ ‖x‖·‖y‖.
        #[test]
        fn prop_cauchy_schwarz(
            x in proptest::collection::vec(-5.0f32..5.0, 1..64),
        ) {
            let y: Vec<f32> = x.iter().map(|v| v * 0.5 + 1.0).collect();
            let lhs = dot(&x, &y).abs();
            let rhs = norm(&x) * norm(&y);
            prop_assert!(lhs <= rhs * (1.0 + 1e-4) + 1e-4);
        }

        /// The mean of identical vectors is that vector.
        #[test]
        fn prop_mean_of_identical(x in proptest::collection::vec(-5.0f32..5.0, 1..32), k in 1usize..5) {
            let refs: Vec<&[f32]> = (0..k).map(|_| x.as_slice()).collect();
            let m = mean_of(&refs);
            for (a, b) in m.iter().zip(x.iter()) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
