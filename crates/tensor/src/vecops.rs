//! BLAS-1 style helpers on plain `&[f32]` / `&mut [f32]` slices.
//!
//! The federated algorithms in `fedadmm-core` treat model parameters, dual
//! variables and control variates as opaque vectors in ℝ^d. These helpers
//! are the shared, allocation-free kernels they are built on. All functions
//! panic on length mismatch — length mismatches between parameter vectors
//! are programming errors, not recoverable conditions.
//!
//! The hot kernels run over fixed-width [`LANES`]-element blocks
//! (`chunks_exact`, so the compiler sees a constant trip count and no bounds
//! checks) with a scalar tail. Elementwise kernels (`axpy`, `sub_into`,
//! `axpy_fused`, `weighted_sum_into`, …) perform exactly the same operation
//! per element as the naive loop, so their results are bit-identical to the
//! scalar reference. The reductions (`dot`, `norm_sq`, `dist`) keep
//! [`LANES`] independent accumulators, which *reassociates* the f32 sum:
//! results are deterministic but differ from a left-to-right fold in the
//! last ulps. Nothing on the engine's seeded training trajectory consumes
//! these reductions, so the byte-identity pins on the engine are unaffected.

/// Block width of the unrolled kernels (f32 lanes of one AVX2 register).
const LANES: usize = 8;

/// `y += alpha * x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    let mut xb = x.chunks_exact(LANES);
    let mut yb = y.chunks_exact_mut(LANES);
    for (ys, xs) in yb.by_ref().zip(xb.by_ref()) {
        for k in 0..LANES {
            ys[k] += alpha * xs[k];
        }
    }
    for (yi, xi) in yb.into_remainder().iter_mut().zip(xb.remainder()) {
        *yi += alpha * xi;
    }
}

/// `y = x` (copy).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn copy(x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "copy length mismatch");
    y.copy_from_slice(x);
}

/// `x *= alpha`.
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dot product `⟨x, y⟩`.
///
/// Accumulates into [`LANES`] independent lanes so the loop vectorizes;
/// the lane sums are folded left-to-right, then the scalar tail is added.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut lanes = [0.0f32; LANES];
    let mut xb = x.chunks_exact(LANES);
    let mut yb = y.chunks_exact(LANES);
    for (xs, ys) in xb.by_ref().zip(yb.by_ref()) {
        for k in 0..LANES {
            lanes[k] += xs[k] * ys[k];
        }
    }
    let mut acc: f32 = lanes.iter().sum();
    for (a, b) in xb.remainder().iter().zip(yb.remainder()) {
        acc += a * b;
    }
    acc
}

/// Euclidean norm `‖x‖₂`.
pub fn norm(x: &[f32]) -> f32 {
    norm_sq(x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²` ([`LANES`] independent accumulators, like
/// [`dot`]).
pub fn norm_sq(x: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let mut xb = x.chunks_exact(LANES);
    for xs in xb.by_ref() {
        for k in 0..LANES {
            lanes[k] += xs[k] * xs[k];
        }
    }
    let mut acc: f32 = lanes.iter().sum();
    for v in xb.remainder() {
        acc += v * v;
    }
    acc
}

/// Euclidean distance `‖x − y‖₂` ([`LANES`] independent accumulators, like
/// [`dot`]).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn dist(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dist length mismatch");
    let mut lanes = [0.0f32; LANES];
    let mut xb = x.chunks_exact(LANES);
    let mut yb = y.chunks_exact(LANES);
    for (xs, ys) in xb.by_ref().zip(yb.by_ref()) {
        for k in 0..LANES {
            let d = xs[k] - ys[k];
            lanes[k] += d * d;
        }
    }
    let mut acc: f32 = lanes.iter().sum();
    for (a, b) in xb.remainder().iter().zip(yb.remainder()) {
        let d = a - b;
        acc += d * d;
    }
    acc.sqrt()
}

/// `out = x - y`, overwriting `out`.
///
/// # Panics
/// Panics on any length mismatch.
pub fn sub_into(x: &[f32], y: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "sub_into length mismatch");
    assert_eq!(x.len(), out.len(), "sub_into output length mismatch");
    let mut xb = x.chunks_exact(LANES);
    let mut yb = y.chunks_exact(LANES);
    let mut ob = out.chunks_exact_mut(LANES);
    for ((os, xs), ys) in ob.by_ref().zip(xb.by_ref()).zip(yb.by_ref()) {
        for k in 0..LANES {
            os[k] = xs[k] - ys[k];
        }
    }
    for ((o, a), b) in ob
        .into_remainder()
        .iter_mut()
        .zip(xb.remainder())
        .zip(yb.remainder())
    {
        *o = a - b;
    }
}

/// `out = x + y`, overwriting `out`.
///
/// # Panics
/// Panics on any length mismatch.
pub fn add_into(x: &[f32], y: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "add_into length mismatch");
    assert_eq!(x.len(), out.len(), "add_into output length mismatch");
    let mut xb = x.chunks_exact(LANES);
    let mut yb = y.chunks_exact(LANES);
    let mut ob = out.chunks_exact_mut(LANES);
    for ((os, xs), ys) in ob.by_ref().zip(xb.by_ref()).zip(yb.by_ref()) {
        for k in 0..LANES {
            os[k] = xs[k] + ys[k];
        }
    }
    for ((o, a), b) in ob
        .into_remainder()
        .iter_mut()
        .zip(xb.remainder())
        .zip(yb.remainder())
    {
        *o = a + b;
    }
}

/// Returns `x - y` as a freshly allocated vector, writing each element
/// exactly once (no intermediate zero-fill).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn sub_new(x: &[f32], y: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), y.len(), "sub_new length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a - b).collect()
}

/// Returns `x + y` as a freshly allocated vector, writing each element
/// exactly once (no intermediate zero-fill).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn add_new(x: &[f32], y: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), y.len(), "add_new length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a + b).collect()
}

/// Fused multi-`axpy`: `out[i] += Σ_k alphas[k] · xs[k][i]` in a single
/// pass over `out`.
///
/// Compared to one `axpy` sweep per term this touches `out` once instead of
/// `k` times — the server-aggregation hot path of the federated algorithms.
///
/// # Panics
/// Panics if `alphas.len() != xs.len()` or any `xs[k].len() != out.len()`.
pub fn axpy_fused(alphas: &[f32], xs: &[&[f32]], out: &mut [f32]) {
    assert_eq!(alphas.len(), xs.len(), "axpy_fused terms length mismatch");
    for x in xs {
        assert_eq!(x.len(), out.len(), "axpy_fused length mismatch");
    }
    match (alphas, xs) {
        ([], []) => {}
        ([a], [x]) => axpy(*a, x, out),
        _ => {
            // Blocked over LANES-wide output tiles: each tile is loaded
            // once, every term streams through it, and the per-element term
            // order matches the naive loop — results are bit-identical.
            let n = out.len();
            let mut i = 0;
            while i + LANES <= n {
                let mut acc = [0.0f32; LANES];
                acc.copy_from_slice(&out[i..i + LANES]);
                for (&a, x) in alphas.iter().zip(xs.iter()) {
                    let xt = &x[i..i + LANES];
                    for k in 0..LANES {
                        acc[k] += a * xt[k];
                    }
                }
                out[i..i + LANES].copy_from_slice(&acc);
                i += LANES;
            }
            for j in i..n {
                let mut acc = out[j];
                for (&a, x) in alphas.iter().zip(xs.iter()) {
                    acc += a * x[j];
                }
                out[j] = acc;
            }
        }
    }
}

/// Fused weighted sum: `out[i] = Σ_k alphas[k] · xs[k][i]` in a single
/// pass over `out` (overwrites `out`; no zero-fill needed).
///
/// # Panics
/// Panics if `alphas.len() != xs.len()` or any `xs[k].len() != out.len()`.
pub fn weighted_sum_into(alphas: &[f32], xs: &[&[f32]], out: &mut [f32]) {
    assert_eq!(
        alphas.len(),
        xs.len(),
        "weighted_sum_into terms length mismatch"
    );
    for x in xs {
        assert_eq!(x.len(), out.len(), "weighted_sum_into length mismatch");
    }
    if xs.is_empty() {
        zero(out);
        return;
    }
    // Same LANES-wide tiling as `axpy_fused`, starting each tile at zero.
    let n = out.len();
    let mut i = 0;
    while i + LANES <= n {
        let mut acc = [0.0f32; LANES];
        for (&a, x) in alphas.iter().zip(xs.iter()) {
            let xt = &x[i..i + LANES];
            for k in 0..LANES {
                acc[k] += a * xt[k];
            }
        }
        out[i..i + LANES].copy_from_slice(&acc);
        i += LANES;
    }
    for j in i..n {
        let mut acc = 0.0f32;
        for (&a, x) in alphas.iter().zip(xs.iter()) {
            acc += a * x[j];
        }
        out[j] = acc;
    }
}

/// One quantized term of a fused dequantize-accumulate: an affinely coded
/// vector (`decoded[i] = min + codes[i] as f32 · step`) and the fold
/// coefficient it is scaled by.
///
/// Borrowing the codes keeps the fold allocation-free; the engine's wire
/// path builds one term per client message straight over the received
/// payload.
#[derive(Debug, Clone, Copy)]
pub struct DequantTerm<'a> {
    /// Fold coefficient the decoded vector is scaled by.
    pub alpha: f32,
    /// Affine decode offset (the quantization grid minimum).
    pub min: f32,
    /// Affine decode step (grid spacing).
    pub step: f32,
    /// Quantization codes, one per output element.
    pub codes: &'a [u16],
}

/// `out[i] += alpha · (min + codes[i] · step)` — dequantize-accumulate one
/// coded vector in a single pass, without materializing the decoded floats.
///
/// Elementwise, so bit-identical to decoding into a scratch vector and
/// calling [`axpy`] on it.
///
/// # Panics
/// Panics if `codes.len() != out.len()`.
pub fn dequant_axpy(alpha: f32, min: f32, step: f32, codes: &[u16], out: &mut [f32]) {
    assert_eq!(codes.len(), out.len(), "dequant_axpy length mismatch");
    let mut cb = codes.chunks_exact(LANES);
    let mut ob = out.chunks_exact_mut(LANES);
    for (os, cs) in ob.by_ref().zip(cb.by_ref()) {
        for k in 0..LANES {
            os[k] += alpha * (min + cs[k] as f32 * step);
        }
    }
    for (o, c) in ob.into_remainder().iter_mut().zip(cb.remainder()) {
        *o += alpha * (min + *c as f32 * step);
    }
}

/// Fused multi-message dequantize-accumulate:
/// `out[i] += Σ_t alphas[t] · (min[t] + codes[t][i] · step[t])` in a single
/// pass over `out` — the compressed analogue of [`axpy_fused`].
///
/// Each `LANES`-wide output tile is loaded once and every term streams
/// through it; per-element term order matches the naive loop, so results
/// are bit-identical to decoding each term and folding it scalar-wise.
///
/// # Panics
/// Panics if any term's `codes.len() != out.len()`.
pub fn dequant_axpy_fused(terms: &[DequantTerm<'_>], out: &mut [f32]) {
    for t in terms {
        assert_eq!(
            t.codes.len(),
            out.len(),
            "dequant_axpy_fused length mismatch"
        );
    }
    match terms {
        [] => {}
        [t] => dequant_axpy(t.alpha, t.min, t.step, t.codes, out),
        _ => {
            let n = out.len();
            let mut i = 0;
            while i + LANES <= n {
                let mut acc = [0.0f32; LANES];
                acc.copy_from_slice(&out[i..i + LANES]);
                for t in terms {
                    let ct = &t.codes[i..i + LANES];
                    for k in 0..LANES {
                        acc[k] += t.alpha * (t.min + ct[k] as f32 * t.step);
                    }
                }
                out[i..i + LANES].copy_from_slice(&acc);
                i += LANES;
            }
            for (j, o) in out.iter_mut().enumerate().skip(i) {
                let mut acc = *o;
                for t in terms {
                    acc += t.alpha * (t.min + t.codes[j] as f32 * t.step);
                }
                *o = acc;
            }
        }
    }
}

/// Fused dequantized weighted sum:
/// `out[i] = Σ_t alphas[t] · (min[t] + codes[t][i] · step[t])`, overwriting
/// `out` — the compressed analogue of [`weighted_sum_into`].
///
/// # Panics
/// Panics if any term's `codes.len() != out.len()`.
pub fn dequant_sum_into(terms: &[DequantTerm<'_>], out: &mut [f32]) {
    for t in terms {
        assert_eq!(t.codes.len(), out.len(), "dequant_sum_into length mismatch");
    }
    if terms.is_empty() {
        zero(out);
        return;
    }
    let n = out.len();
    let mut i = 0;
    while i + LANES <= n {
        let mut acc = [0.0f32; LANES];
        for t in terms {
            let ct = &t.codes[i..i + LANES];
            for k in 0..LANES {
                acc[k] += t.alpha * (t.min + ct[k] as f32 * t.step);
            }
        }
        out[i..i + LANES].copy_from_slice(&acc);
        i += LANES;
    }
    for (j, o) in out.iter_mut().enumerate().skip(i) {
        let mut acc = 0.0f32;
        for t in terms {
            acc += t.alpha * (t.min + t.codes[j] as f32 * t.step);
        }
        *o = acc;
    }
}

/// Minimum and maximum of `x` in one pass ([`LANES`] independent
/// accumulators per bound). Returns `(∞, −∞)` for an empty slice. Exact:
/// min/max are associative, so lane order cannot change the result.
///
/// This is the quantization-grid pass of the wire path — one call per
/// upload — which is why it is fused into a single sweep here instead of
/// two serial `fold`s at the call site.
pub fn min_max(x: &[f32]) -> (f32, f32) {
    let mut lo = [f32::INFINITY; LANES];
    let mut hi = [f32::NEG_INFINITY; LANES];
    let mut xb = x.chunks_exact(LANES);
    for xs in xb.by_ref() {
        for k in 0..LANES {
            lo[k] = lo[k].min(xs[k]);
            hi[k] = hi[k].max(xs[k]);
        }
    }
    let mut min = lo.iter().copied().fold(f32::INFINITY, f32::min);
    let mut max = hi.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for &v in xb.remainder() {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

/// `x.iter().sum()` of absolute values (L1 norm).
pub fn norm_l1(x: &[f32]) -> f32 {
    x.iter().map(|v| v.abs()).sum()
}

/// Fills `x` with zeros.
pub fn zero(x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi = 0.0;
    }
}

/// Elementwise mean of several equally sized vectors.
///
/// Returns an empty vector if `vectors` is empty.
///
/// # Panics
/// Panics if the vectors have differing lengths.
pub fn mean_of(vectors: &[&[f32]]) -> Vec<f32> {
    if vectors.is_empty() {
        return Vec::new();
    }
    let d = vectors[0].len();
    let mut out = vec![0.0f32; d];
    for v in vectors {
        assert_eq!(v.len(), d, "mean_of length mismatch");
        for (o, x) in out.iter_mut().zip(v.iter()) {
            *o += x;
        }
    }
    let inv = 1.0 / vectors.len() as f32;
    for o in out.iter_mut() {
        *o *= inv;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn min_max_matches_serial_folds_at_every_remainder_shape() {
        assert_eq!(min_max(&[]), (f32::INFINITY, f32::NEG_INFINITY));
        for n in [1usize, 7, 8, 9, 31, 4097] {
            let x: Vec<f32> = (0..n as i64)
                .map(|i| ((i * 37 + 11).rem_euclid(101) - 50) as f32)
                .collect();
            let lo = x.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(min_max(&x), (lo, hi), "length {n}");
        }
    }

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_mismatch_panics() {
        let x = [1.0];
        let mut y = [1.0, 2.0];
        axpy(1.0, &x, &mut y);
    }

    #[test]
    fn dot_norm_dist() {
        let x = [3.0, 4.0];
        let y = [0.0, 0.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm(&x), 5.0);
        assert_eq!(norm_sq(&x), 25.0);
        assert_eq!(dist(&x, &y), 5.0);
        assert_eq!(norm_l1(&[-1.0, 2.0]), 3.0);
    }

    #[test]
    fn sub_add_into() {
        let x = [5.0, 7.0];
        let y = [2.0, 3.0];
        let mut out = [0.0; 2];
        sub_into(&x, &y, &mut out);
        assert_eq!(out, [3.0, 4.0]);
        add_into(&x, &y, &mut out);
        assert_eq!(out, [7.0, 10.0]);
    }

    #[test]
    fn sub_add_new_match_the_into_variants() {
        let x = [5.0, 7.0];
        let y = [2.0, 3.0];
        assert_eq!(sub_new(&x, &y), vec![3.0, 4.0]);
        assert_eq!(add_new(&x, &y), vec![7.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "sub_new length mismatch")]
    fn sub_new_mismatch_panics() {
        sub_new(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_fused_matches_sequential_axpys() {
        let xs: Vec<Vec<f32>> = vec![
            vec![1.0, 2.0, 3.0],
            vec![-1.0, 0.5, 2.0],
            vec![4.0, 4.0, 4.0],
        ];
        let alphas = [0.5, 2.0, -1.0];
        let mut fused = vec![1.0f32, 1.0, 1.0];
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        axpy_fused(&alphas, &refs, &mut fused);
        let mut sequential = vec![1.0f32, 1.0, 1.0];
        for (&a, x) in alphas.iter().zip(xs.iter()) {
            axpy(a, x, &mut sequential);
        }
        for (f, s) in fused.iter().zip(sequential.iter()) {
            assert!((f - s).abs() < 1e-6);
        }
        // Degenerate arities.
        let mut one = vec![0.0f32; 3];
        axpy_fused(&[2.0], &[&xs[0]], &mut one);
        assert_eq!(one, vec![2.0, 4.0, 6.0]);
        axpy_fused(&[], &[], &mut one);
        assert_eq!(one, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn weighted_sum_into_overwrites() {
        let a = [1.0, 2.0];
        let b = [3.0, 6.0];
        let mut out = [9.0, 9.0];
        weighted_sum_into(&[0.5, 0.5], &[&a, &b], &mut out);
        assert_eq!(out, [2.0, 4.0]);
        weighted_sum_into(&[], &[], &mut out);
        assert_eq!(out, [0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "axpy_fused length mismatch")]
    fn axpy_fused_mismatch_panics() {
        let mut out = [0.0f32; 2];
        axpy_fused(&[1.0], &[&[1.0, 2.0, 3.0][..]], &mut out);
    }

    #[test]
    fn copy_scale_zero() {
        let x = [1.0, 2.0];
        let mut y = [0.0, 0.0];
        copy(&x, &mut y);
        assert_eq!(y, [1.0, 2.0]);
        scale(3.0, &mut y);
        assert_eq!(y, [3.0, 6.0]);
        zero(&mut y);
        assert_eq!(y, [0.0, 0.0]);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0, 2.0];
        let b = [3.0, 6.0];
        let m = mean_of(&[&a, &b]);
        assert_eq!(m, vec![2.0, 4.0]);
        assert!(mean_of(&[]).is_empty());
    }

    /// Naive scalar references for the chunked kernels. On integer-valued
    /// f32 data every partial sum below 2^24 is exact, so any summation
    /// order produces the same bits — exact equality is a valid oracle even
    /// for the reassociated reductions.
    mod reference {
        pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
            for (yi, xi) in y.iter_mut().zip(x.iter()) {
                *yi += alpha * xi;
            }
        }
        pub fn dot(x: &[f32], y: &[f32]) -> f32 {
            x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
        }
        pub fn norm_sq(x: &[f32]) -> f32 {
            x.iter().map(|v| v * v).sum()
        }
        pub fn dist(x: &[f32], y: &[f32]) -> f32 {
            x.iter()
                .zip(y.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        }
        pub fn sub_into(x: &[f32], y: &[f32], out: &mut [f32]) {
            for ((o, a), b) in out.iter_mut().zip(x.iter()).zip(y.iter()) {
                *o = a - b;
            }
        }
        pub fn add_into(x: &[f32], y: &[f32], out: &mut [f32]) {
            for ((o, a), b) in out.iter_mut().zip(x.iter()).zip(y.iter()) {
                *o = a + b;
            }
        }
        pub fn axpy_fused(alphas: &[f32], xs: &[&[f32]], out: &mut [f32]) {
            for (i, o) in out.iter_mut().enumerate() {
                for (&a, x) in alphas.iter().zip(xs.iter()) {
                    *o += a * x[i];
                }
            }
        }
        pub fn weighted_sum_into(alphas: &[f32], xs: &[&[f32]], out: &mut [f32]) {
            for (i, o) in out.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (&a, x) in alphas.iter().zip(xs.iter()) {
                    acc += a * x[i];
                }
                *o = acc;
            }
        }
        pub fn dequant_axpy(alpha: f32, min: f32, step: f32, codes: &[u16], out: &mut [f32]) {
            for (o, &c) in out.iter_mut().zip(codes.iter()) {
                *o += alpha * (min + c as f32 * step);
            }
        }
        pub fn dequant_axpy_fused(terms: &[super::DequantTerm<'_>], out: &mut [f32]) {
            for (i, o) in out.iter_mut().enumerate() {
                for t in terms {
                    *o += t.alpha * (t.min + t.codes[i] as f32 * t.step);
                }
            }
        }
        pub fn dequant_sum_into(terms: &[super::DequantTerm<'_>], out: &mut [f32]) {
            for (i, o) in out.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for t in terms {
                    acc += t.alpha * (t.min + t.codes[i] as f32 * t.step);
                }
                *o = acc;
            }
        }
    }

    /// Lengths that exercise the empty, all-tail, exact-block and
    /// block-plus-tail paths of the LANES=8 kernels.
    const REMAINDER_LENGTHS: [usize; 7] = [0, 1, 7, 8, 9, 4095, 4097];

    /// Deterministic integer-valued f32 data in [-8, 8].
    fn ramp(n: usize, mul: i64, offset: i64) -> Vec<f32> {
        (0..n as i64)
            .map(|i| ((i * mul + offset).rem_euclid(17) - 8) as f32)
            .collect()
    }

    #[test]
    fn chunked_kernels_match_scalar_reference_exactly_on_remainder_lengths() {
        for &n in &REMAINDER_LENGTHS {
            let x = ramp(n, 7, 3);
            let y = ramp(n, 5, 11);
            let z = ramp(n, 3, 1);

            let mut got = y.clone();
            let mut want = y.clone();
            axpy(3.0, &x, &mut got);
            reference::axpy(3.0, &x, &mut want);
            assert_eq!(got, want, "axpy len {n}");

            assert_eq!(dot(&x, &y), reference::dot(&x, &y), "dot len {n}");
            assert_eq!(norm_sq(&x), reference::norm_sq(&x), "norm_sq len {n}");
            assert_eq!(norm(&x), reference::norm_sq(&x).sqrt(), "norm len {n}");
            assert_eq!(dist(&x, &y), reference::dist(&x, &y), "dist len {n}");

            let mut got = vec![0.0f32; n];
            let mut want = vec![0.0f32; n];
            sub_into(&x, &y, &mut got);
            reference::sub_into(&x, &y, &mut want);
            assert_eq!(got, want, "sub_into len {n}");
            add_into(&x, &y, &mut got);
            reference::add_into(&x, &y, &mut want);
            assert_eq!(got, want, "add_into len {n}");

            let alphas = [2.0f32, -3.0, 5.0];
            let terms: [&[f32]; 3] = [&x, &y, &z];
            let mut got = z.clone();
            let mut want = z.clone();
            axpy_fused(&alphas, &terms, &mut got);
            reference::axpy_fused(&alphas, &terms, &mut want);
            assert_eq!(got, want, "axpy_fused len {n}");
            weighted_sum_into(&alphas, &terms, &mut got);
            reference::weighted_sum_into(&alphas, &terms, &mut want);
            assert_eq!(got, want, "weighted_sum_into len {n}");

            // Integer-valued (alpha, min, step, codes) keep every decode and
            // partial sum exact, so the fused dequant kernels must agree
            // with the scalar reference bit for bit.
            let codes_a = code_ramp(n, 7, 2);
            let codes_b = code_ramp(n, 5, 9);
            let codes_c = code_ramp(n, 11, 4);
            let mut got = z.clone();
            let mut want = z.clone();
            dequant_axpy(3.0, -8.0, 2.0, &codes_a, &mut got);
            reference::dequant_axpy(3.0, -8.0, 2.0, &codes_a, &mut want);
            assert_eq!(got, want, "dequant_axpy len {n}");

            let dq_terms = [
                DequantTerm {
                    alpha: 2.0,
                    min: -8.0,
                    step: 2.0,
                    codes: &codes_a,
                },
                DequantTerm {
                    alpha: -3.0,
                    min: 4.0,
                    step: 1.0,
                    codes: &codes_b,
                },
                DequantTerm {
                    alpha: 5.0,
                    min: -2.0,
                    step: 3.0,
                    codes: &codes_c,
                },
            ];
            let mut got = z.clone();
            let mut want = z.clone();
            dequant_axpy_fused(&dq_terms, &mut got);
            reference::dequant_axpy_fused(&dq_terms, &mut want);
            assert_eq!(got, want, "dequant_axpy_fused len {n}");
            dequant_sum_into(&dq_terms, &mut got);
            reference::dequant_sum_into(&dq_terms, &mut want);
            assert_eq!(got, want, "dequant_sum_into len {n}");
        }
    }

    /// Deterministic quantization codes in [0, 13).
    fn code_ramp(n: usize, mul: u64, offset: u64) -> Vec<u16> {
        (0..n as u64)
            .map(|i| ((i * mul + offset) % 13) as u16)
            .collect()
    }

    #[test]
    fn dequant_axpy_matches_decode_then_axpy() {
        // Single-term fused fold ≡ materialize the decoded vector, then axpy.
        let codes = code_ramp(37, 3, 5);
        let (alpha, min, step) = (0.75f32, -0.4f32, 0.05f32);
        let decoded: Vec<f32> = codes.iter().map(|&c| min + c as f32 * step).collect();
        let mut via_decode = ramp(37, 5, 1);
        let mut direct = via_decode.clone();
        axpy(alpha, &decoded, &mut via_decode);
        dequant_axpy(alpha, min, step, &codes, &mut direct);
        assert_eq!(direct, via_decode);
    }

    #[test]
    fn dequant_fused_degenerate_arities() {
        let mut out = [1.0f32, 2.0, 3.0];
        dequant_axpy_fused(&[], &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        dequant_sum_into(&[], &mut out);
        assert_eq!(out, [0.0, 0.0, 0.0]);
        let codes = [1u16, 2, 3];
        dequant_axpy_fused(
            &[DequantTerm {
                alpha: 2.0,
                min: 0.0,
                step: 1.0,
                codes: &codes,
            }],
            &mut out,
        );
        assert_eq!(out, [2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dequant_axpy_fused length mismatch")]
    fn dequant_fused_mismatch_panics() {
        let codes = [1u16, 2, 3];
        let mut out = [0.0f32; 2];
        dequant_axpy_fused(
            &[DequantTerm {
                alpha: 1.0,
                min: 0.0,
                step: 1.0,
                codes: &codes,
            }],
            &mut out,
        );
    }

    proptest! {
        /// axpy then axpy with the negated coefficient restores the vector
        /// (up to floating-point error).
        #[test]
        fn prop_axpy_inverse(
            x in proptest::collection::vec(-10.0f32..10.0, 1..64),
            alpha in -3.0f32..3.0,
        ) {
            let mut y = vec![1.0f32; x.len()];
            let orig = y.clone();
            axpy(alpha, &x, &mut y);
            axpy(-alpha, &x, &mut y);
            for (a, b) in y.iter().zip(orig.iter()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }

        /// Cauchy–Schwarz: |⟨x,y⟩| ≤ ‖x‖·‖y‖.
        #[test]
        fn prop_cauchy_schwarz(
            x in proptest::collection::vec(-5.0f32..5.0, 1..64),
        ) {
            let y: Vec<f32> = x.iter().map(|v| v * 0.5 + 1.0).collect();
            let lhs = dot(&x, &y).abs();
            let rhs = norm(&x) * norm(&y);
            prop_assert!(lhs <= rhs * (1.0 + 1e-4) + 1e-4);
        }

        /// The mean of identical vectors is that vector.
        #[test]
        fn prop_mean_of_identical(x in proptest::collection::vec(-5.0f32..5.0, 1..32), k in 1usize..5) {
            let refs: Vec<&[f32]> = (0..k).map(|_| x.as_slice()).collect();
            let m = mean_of(&refs);
            for (a, b) in m.iter().zip(x.iter()) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }
}
