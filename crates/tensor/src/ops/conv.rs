//! Batched 2-D convolution (forward and backward) via im2col.
//!
//! The paper's two CNN architectures use 5×5 convolutions with 'same'
//! padding (input spatial size preserved), stride 1. The kernels here are
//! general over kernel size, stride and padding, but only what the models
//! need is heavily exercised.
//!
//! Layout conventions (all row-major, contiguous):
//! * input:   `[batch, in_channels, height, width]`
//! * weight:  `[out_channels, in_channels, kernel_h, kernel_w]`
//! * bias:    `[out_channels]`
//! * output:  `[batch, out_channels, out_h, out_w]`

use crate::error::{TensorError, TensorResult};
use crate::ops::matmul::matmul_into;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, same shape as the input.
    pub grad_input: Tensor,
    /// Gradient with respect to the kernel weights, same shape as the weights.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, shape `[out_channels]`.
    pub grad_bias: Tensor,
}

/// Computes the output spatial size of a convolution.
pub fn conv2d_output_size(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    (input + 2 * padding - kernel) / stride + 1
}

/// Reusable scratch buffers for the `_into` convolution kernels.
///
/// One scratch serves any sequence of forward/backward calls; each buffer is
/// resized on demand and reuses its capacity across steps, so steady-state
/// training performs no per-step allocation in the convolution layers.
#[derive(Debug, Clone, Default)]
pub struct Conv2dScratch {
    /// im2col matrix, `[in_c*kh*kw, out_h*out_w]`, reused per sample.
    col: Vec<f32>,
    /// Gradient of the im2col matrix, same shape as `col`.
    grad_col: Vec<f32>,
    /// Per-sample weight-gradient contribution, `[out_c, in_c*kh*kw]`.
    gw_sample: Vec<f32>,
    /// Per-sample bias-gradient contribution, `[out_c]`.
    gb_sample: Vec<f32>,
    /// Weight gradient folded over the batch before it is added to the
    /// caller's accumulator (preserves the fold order of [`conv2d_backward`]).
    gw_total: Vec<f32>,
    /// Bias gradient folded over the batch.
    gb_total: Vec<f32>,
}

fn resize_scratch(buf: &mut Vec<f32>, len: usize) {
    buf.clear();
    buf.resize(len, 0.0);
}

/// Validates shapes shared by the forward and backward passes.
fn check_shapes(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
) -> TensorResult<(usize, usize, usize, usize, usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
        });
    }
    if weight.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: weight.rank(),
        });
    }
    let [batch, in_c, h, w] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    let [out_c, w_in_c, kh, kw] = [
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    ];
    if in_c != w_in_c {
        return Err(TensorError::ShapeMismatch {
            left: input.dims().to_vec(),
            right: weight.dims().to_vec(),
        });
    }
    if bias.len() != out_c {
        return Err(TensorError::ShapeMismatch {
            left: vec![out_c],
            right: bias.dims().to_vec(),
        });
    }
    Ok((batch, in_c, h, w, out_c, kh, kw))
}

/// Unrolls one padded input sample into the im2col matrix.
///
/// The resulting matrix has shape `[in_c*kh*kw, out_h*out_w]` stored
/// row-major in `col`.
#[allow(clippy::too_many_arguments)]
fn im2col(
    sample: &[f32],
    col: &mut [f32],
    in_c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
    out_h: usize,
    out_w: usize,
) {
    let out_hw = out_h * out_w;
    for c in 0..in_c {
        let channel = &sample[c * h * w..(c + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row_idx = (c * kh + ki) * kw + kj;
                let col_row = &mut col[row_idx * out_hw..(row_idx + 1) * out_hw];
                for oy in 0..out_h {
                    let iy = (oy * stride + ki) as isize - padding as isize;
                    let base = oy * out_w;
                    if iy < 0 || iy >= h as isize {
                        for v in &mut col_row[base..base + out_w] {
                            *v = 0.0;
                        }
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..out_w {
                        let ix = (ox * stride + kj) as isize - padding as isize;
                        col_row[base + ox] = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            channel[iy * w + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Scatters an im2col matrix back into a (padded) input gradient sample.
#[allow(clippy::too_many_arguments)]
fn col2im(
    col: &[f32],
    sample_grad: &mut [f32],
    in_c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
    out_h: usize,
    out_w: usize,
) {
    let out_hw = out_h * out_w;
    for c in 0..in_c {
        let channel = &mut sample_grad[c * h * w..(c + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row_idx = (c * kh + ki) * kw + kj;
                let col_row = &col[row_idx * out_hw..(row_idx + 1) * out_hw];
                for oy in 0..out_h {
                    let iy = (oy * stride + ki) as isize - padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..out_w {
                        let ix = (ox * stride + kj) as isize - padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        channel[iy * w + ix as usize] += col_row[oy * out_w + ox];
                    }
                }
            }
        }
    }
}

/// Forward pass of a batched 2-D convolution.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    padding: usize,
) -> TensorResult<Tensor> {
    let (batch, in_c, h, w, out_c, kh, kw) = check_shapes(input, weight, bias)?;
    if stride == 0 {
        return Err(TensorError::InvalidArgument(
            "stride must be positive".into(),
        ));
    }
    let out_h = conv2d_output_size(h, kh, stride, padding);
    let out_w = conv2d_output_size(w, kw, stride, padding);
    let out_hw = out_h * out_w;
    let col_rows = in_c * kh * kw;

    let input_data = input.data();
    let weight_data = weight.data();
    let bias_data = bias.data();
    let sample_in = in_c * h * w;
    let sample_out = out_c * out_hw;

    let mut output = vec![0.0f32; batch * sample_out];
    let process_sample = |b: usize, out_sample: &mut [f32]| {
        let mut col = vec![0.0f32; col_rows * out_hw];
        let sample = &input_data[b * sample_in..(b + 1) * sample_in];
        im2col(
            sample, &mut col, in_c, h, w, kh, kw, stride, padding, out_h, out_w,
        );
        // out_sample[out_c × out_hw] = weight[out_c × col_rows] · col[col_rows × out_hw]
        matmul_into(weight_data, &col, out_sample, out_c, col_rows, out_hw);
        for oc in 0..out_c {
            let bias_v = bias_data[oc];
            for v in &mut out_sample[oc * out_hw..(oc + 1) * out_hw] {
                *v += bias_v;
            }
        }
    };
    if batch > 1 {
        output
            .par_chunks_mut(sample_out)
            .enumerate()
            .for_each(|(b, chunk)| process_sample(b, chunk));
    } else {
        process_sample(0, &mut output);
    }
    Tensor::from_vec(output, &[batch, out_c, out_h, out_w])
}

/// Forward pass of a batched 2-D convolution into a caller-owned tensor.
///
/// Bit-identical to [`conv2d_forward`]: samples are processed with the same
/// per-sample kernel, and `out` is resized (reusing capacity) to
/// `[batch, out_c, out_h, out_w]` and fully overwritten. The im2col matrix
/// lives in `scratch` and is reused across calls.
pub fn conv2d_forward_into(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    padding: usize,
    scratch: &mut Conv2dScratch,
    out: &mut Tensor,
) -> TensorResult<()> {
    let (batch, in_c, h, w, out_c, kh, kw) = check_shapes(input, weight, bias)?;
    if stride == 0 {
        return Err(TensorError::InvalidArgument(
            "stride must be positive".into(),
        ));
    }
    let out_h = conv2d_output_size(h, kh, stride, padding);
    let out_w = conv2d_output_size(w, kw, stride, padding);
    let out_hw = out_h * out_w;
    let col_rows = in_c * kh * kw;

    let input_data = input.data();
    let weight_data = weight.data();
    let bias_data = bias.data();
    let sample_in = in_c * h * w;
    let sample_out = out_c * out_hw;

    out.resize_in_place(&[batch, out_c, out_h, out_w]);
    let output = out.data_mut();
    resize_scratch(&mut scratch.col, col_rows * out_hw);
    for b in 0..batch {
        let out_sample = &mut output[b * sample_out..(b + 1) * sample_out];
        let sample = &input_data[b * sample_in..(b + 1) * sample_in];
        im2col(
            sample,
            &mut scratch.col,
            in_c,
            h,
            w,
            kh,
            kw,
            stride,
            padding,
            out_h,
            out_w,
        );
        matmul_into(
            weight_data,
            &scratch.col,
            out_sample,
            out_c,
            col_rows,
            out_hw,
        );
        for oc in 0..out_c {
            let bias_v = bias_data[oc];
            for v in &mut out_sample[oc * out_hw..(oc + 1) * out_hw] {
                *v += bias_v;
            }
        }
    }
    Ok(())
}

/// Backward pass of a batched 2-D convolution into caller-owned tensors.
///
/// `grad_weight` / `grad_bias` are **accumulated into** (`+=`), matching the
/// layer-level contract of adding [`conv2d_backward`]'s result to a running
/// gradient; `grad_input` is resized and fully overwritten. To keep values
/// bit-identical to the allocating path, per-sample contributions are first
/// folded into a batch total (in sample order, as [`conv2d_backward`] folds
/// its partials) and the total is added to the accumulators once.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_into(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    stride: usize,
    padding: usize,
    scratch: &mut Conv2dScratch,
    grad_weight: &mut Tensor,
    grad_bias: &mut Tensor,
    grad_input: &mut Tensor,
) -> TensorResult<()> {
    let bias_placeholder = Tensor::zeros(&[weight.dims()[0]]);
    let (batch, in_c, h, w, out_c, kh, kw) = check_shapes(input, weight, &bias_placeholder)?;
    let out_h = conv2d_output_size(h, kh, stride, padding);
    let out_w = conv2d_output_size(w, kw, stride, padding);
    let out_hw = out_h * out_w;
    if grad_output.dims() != [batch, out_c, out_h, out_w] {
        return Err(TensorError::ShapeMismatch {
            left: vec![batch, out_c, out_h, out_w],
            right: grad_output.dims().to_vec(),
        });
    }
    let col_rows = in_c * kh * kw;
    if grad_weight.dims() != weight.dims() {
        return Err(TensorError::ShapeMismatch {
            left: weight.dims().to_vec(),
            right: grad_weight.dims().to_vec(),
        });
    }
    if grad_bias.len() != out_c {
        return Err(TensorError::ShapeMismatch {
            left: vec![out_c],
            right: grad_bias.dims().to_vec(),
        });
    }
    let input_data = input.data();
    let weight_data = weight.data();
    let grad_out_data = grad_output.data();
    let sample_in = in_c * h * w;
    let sample_out = out_c * out_hw;

    resize_scratch(&mut scratch.col, col_rows * out_hw);
    resize_scratch(&mut scratch.grad_col, col_rows * out_hw);
    resize_scratch(&mut scratch.gw_sample, out_c * col_rows);
    resize_scratch(&mut scratch.gb_sample, out_c);
    resize_scratch(&mut scratch.gw_total, out_c * col_rows);
    resize_scratch(&mut scratch.gb_total, out_c);

    grad_input.resize_in_place(input.dims());
    let gi_all = grad_input.data_mut();
    gi_all.iter_mut().for_each(|g| *g = 0.0);

    for b in 0..batch {
        let sample = &input_data[b * sample_in..(b + 1) * sample_in];
        im2col(
            sample,
            &mut scratch.col,
            in_c,
            h,
            w,
            kh,
            kw,
            stride,
            padding,
            out_h,
            out_w,
        );
        let go = &grad_out_data[b * sample_out..(b + 1) * sample_out];

        // gw_sample[out_c × col_rows] = go[out_c × out_hw] · colᵀ[out_hw × col_rows]
        for oc in 0..out_c {
            let go_row = &go[oc * out_hw..(oc + 1) * out_hw];
            let gw_row = &mut scratch.gw_sample[oc * col_rows..(oc + 1) * col_rows];
            for (r, gw_v) in gw_row.iter_mut().enumerate() {
                let col_row = &scratch.col[r * out_hw..(r + 1) * out_hw];
                let mut acc = 0.0f32;
                for (a, c) in go_row.iter().zip(col_row.iter()) {
                    acc += a * c;
                }
                *gw_v = acc;
            }
        }
        for oc in 0..out_c {
            scratch.gb_sample[oc] = go[oc * out_hw..(oc + 1) * out_hw].iter().sum();
        }
        for (a, b) in scratch.gw_total.iter_mut().zip(scratch.gw_sample.iter()) {
            *a += b;
        }
        for (a, b) in scratch.gb_total.iter_mut().zip(scratch.gb_sample.iter()) {
            *a += b;
        }

        // grad_col[col_rows × out_hw] = weightᵀ[col_rows × out_c] · go[out_c × out_hw]
        scratch.grad_col.iter_mut().for_each(|g| *g = 0.0);
        for oc in 0..out_c {
            let w_row = &weight_data[oc * col_rows..(oc + 1) * col_rows];
            let go_row = &go[oc * out_hw..(oc + 1) * out_hw];
            for (r, &w_v) in w_row.iter().enumerate() {
                if w_v == 0.0 {
                    continue;
                }
                let gc_row = &mut scratch.grad_col[r * out_hw..(r + 1) * out_hw];
                for (g, &go_v) in gc_row.iter_mut().zip(go_row.iter()) {
                    *g += w_v * go_v;
                }
            }
        }
        let gi = &mut gi_all[b * sample_in..(b + 1) * sample_in];
        col2im(
            &scratch.grad_col,
            gi,
            in_c,
            h,
            w,
            kh,
            kw,
            stride,
            padding,
            out_h,
            out_w,
        );
    }

    for (a, b) in grad_weight
        .data_mut()
        .iter_mut()
        .zip(scratch.gw_total.iter())
    {
        *a += b;
    }
    for (a, b) in grad_bias.data_mut().iter_mut().zip(scratch.gb_total.iter()) {
        *a += b;
    }
    Ok(())
}

/// Backward pass of a batched 2-D convolution.
///
/// `grad_output` must have the shape produced by [`conv2d_forward`] for the
/// same `(input, weight, stride, padding)`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    stride: usize,
    padding: usize,
) -> TensorResult<Conv2dGrads> {
    let bias_placeholder = Tensor::zeros(&[weight.dims()[0]]);
    let (batch, in_c, h, w, out_c, kh, kw) = check_shapes(input, weight, &bias_placeholder)?;
    let out_h = conv2d_output_size(h, kh, stride, padding);
    let out_w = conv2d_output_size(w, kw, stride, padding);
    let out_hw = out_h * out_w;
    if grad_output.dims() != [batch, out_c, out_h, out_w] {
        return Err(TensorError::ShapeMismatch {
            left: vec![batch, out_c, out_h, out_w],
            right: grad_output.dims().to_vec(),
        });
    }
    let col_rows = in_c * kh * kw;
    let input_data = input.data();
    let weight_data = weight.data();
    let grad_out_data = grad_output.data();
    let sample_in = in_c * h * w;
    let sample_out = out_c * out_hw;

    // Per-sample partial results folded together at the end. Each sample's
    // contribution is independent, so this parallelises cleanly.
    struct Partial {
        grad_weight: Vec<f32>,
        grad_bias: Vec<f32>,
        grad_input: Vec<f32>,
        index: usize,
    }

    let compute_sample = |b: usize| -> Partial {
        let mut col = vec![0.0f32; col_rows * out_hw];
        let sample = &input_data[b * sample_in..(b + 1) * sample_in];
        im2col(
            sample, &mut col, in_c, h, w, kh, kw, stride, padding, out_h, out_w,
        );
        let go = &grad_out_data[b * sample_out..(b + 1) * sample_out];

        // grad_weight[out_c × col_rows] += go[out_c × out_hw] · colᵀ[out_hw × col_rows]
        let mut gw = vec![0.0f32; out_c * col_rows];
        for oc in 0..out_c {
            let go_row = &go[oc * out_hw..(oc + 1) * out_hw];
            let gw_row = &mut gw[oc * col_rows..(oc + 1) * col_rows];
            for (r, gw_v) in gw_row.iter_mut().enumerate() {
                let col_row = &col[r * out_hw..(r + 1) * out_hw];
                let mut acc = 0.0f32;
                for (a, c) in go_row.iter().zip(col_row.iter()) {
                    acc += a * c;
                }
                *gw_v = acc;
            }
        }

        // grad_bias[oc] += sum of go over spatial positions
        let mut gb = vec![0.0f32; out_c];
        for oc in 0..out_c {
            gb[oc] = go[oc * out_hw..(oc + 1) * out_hw].iter().sum();
        }

        // grad_col[col_rows × out_hw] = weightᵀ[col_rows × out_c] · go[out_c × out_hw]
        let mut grad_col = vec![0.0f32; col_rows * out_hw];
        for oc in 0..out_c {
            let w_row = &weight_data[oc * col_rows..(oc + 1) * col_rows];
            let go_row = &go[oc * out_hw..(oc + 1) * out_hw];
            for (r, &w_v) in w_row.iter().enumerate() {
                if w_v == 0.0 {
                    continue;
                }
                let gc_row = &mut grad_col[r * out_hw..(r + 1) * out_hw];
                for (g, &go_v) in gc_row.iter_mut().zip(go_row.iter()) {
                    *g += w_v * go_v;
                }
            }
        }
        let mut gi = vec![0.0f32; sample_in];
        col2im(
            &grad_col, &mut gi, in_c, h, w, kh, kw, stride, padding, out_h, out_w,
        );
        Partial {
            grad_weight: gw,
            grad_bias: gb,
            grad_input: gi,
            index: b,
        }
    };

    let partials: Vec<Partial> = if batch > 1 {
        (0..batch).into_par_iter().map(compute_sample).collect()
    } else {
        (0..batch).map(compute_sample).collect()
    };

    let mut grad_weight = vec![0.0f32; out_c * col_rows];
    let mut grad_bias = vec![0.0f32; out_c];
    let mut grad_input = vec![0.0f32; batch * sample_in];
    for p in partials {
        for (a, b) in grad_weight.iter_mut().zip(p.grad_weight.iter()) {
            *a += b;
        }
        for (a, b) in grad_bias.iter_mut().zip(p.grad_bias.iter()) {
            *a += b;
        }
        grad_input[p.index * sample_in..(p.index + 1) * sample_in].copy_from_slice(&p.grad_input);
    }

    Ok(Conv2dGrads {
        grad_input: Tensor::from_vec(grad_input, input.dims())?,
        grad_weight: Tensor::from_vec(grad_weight, weight.dims())?,
        grad_bias: Tensor::from_vec(grad_bias, &[out_c])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_same_padding() {
        // 5x5 kernel with padding 2 preserves the spatial size (the paper's CNNs).
        assert_eq!(conv2d_output_size(28, 5, 1, 2), 28);
        assert_eq!(conv2d_output_size(32, 5, 1, 2), 32);
        assert_eq!(conv2d_output_size(28, 5, 1, 0), 24);
        assert_eq!(conv2d_output_size(4, 2, 2, 0), 2);
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // A 1x1 kernel with weight 1 and no padding copies the input.
        let input = Tensor::from_vec((0..9).map(|x| x as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d_forward(&input, &weight, &bias, 1, 0).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn known_3x3_convolution() {
        // Input 1x1x3x3 = [[1,2,3],[4,5,6],[7,8,9]], kernel 2x2 all-ones, no padding.
        let input =
            Tensor::from_vec(vec![1., 2., 3., 4., 5., 6., 7., 8., 9.], &[1, 1, 3, 3]).unwrap();
        let weight = Tensor::ones(&[1, 1, 2, 2]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d_forward(&input, &weight, &bias, 1, 0).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn bias_added_per_channel() {
        let input = Tensor::zeros(&[1, 1, 3, 3]);
        let weight = Tensor::zeros(&[2, 1, 3, 3]);
        let bias = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let out = conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
        assert_eq!(out.dims(), &[1, 2, 3, 3]);
        for &v in &out.data()[0..9] {
            assert_eq!(v, 1.5);
        }
        for &v in &out.data()[9..18] {
            assert_eq!(v, -2.0);
        }
    }

    #[test]
    fn padding_preserves_shape_for_5x5() {
        let input = Tensor::ones(&[2, 1, 8, 8]);
        let weight = Tensor::ones(&[3, 1, 5, 5]);
        let bias = Tensor::zeros(&[3]);
        let out = conv2d_forward(&input, &weight, &bias, 1, 2).unwrap();
        assert_eq!(out.dims(), &[2, 3, 8, 8]);
        // Centre pixels see the full 5x5 window of ones: value 25.
        assert_eq!(out.get(&[0, 0, 4, 4]).unwrap(), 25.0);
        // The corner sees only a 3x3 window.
        assert_eq!(out.get(&[0, 0, 0, 0]).unwrap(), 9.0);
    }

    #[test]
    fn backward_shapes() {
        let input = Tensor::ones(&[2, 3, 6, 6]);
        let weight = Tensor::ones(&[4, 3, 5, 5]);
        let bias = Tensor::zeros(&[4]);
        let out = conv2d_forward(&input, &weight, &bias, 1, 2).unwrap();
        let grads = conv2d_backward(&input, &weight, &out, 1, 2).unwrap();
        assert_eq!(grads.grad_input.dims(), input.dims());
        assert_eq!(grads.grad_weight.dims(), weight.dims());
        assert_eq!(grads.grad_bias.dims(), &[4]);
    }

    #[test]
    fn backward_bias_is_sum_of_grad_output() {
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let weight = Tensor::ones(&[2, 1, 1, 1]);
        let grad_out = Tensor::ones(&[1, 2, 3, 3]);
        let grads = conv2d_backward(&input, &weight, &grad_out, 1, 0).unwrap();
        assert_eq!(grads.grad_bias.data(), &[9.0, 9.0]);
    }

    /// Finite-difference gradient check of the convolution weights.
    #[test]
    fn backward_weight_matches_finite_difference() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(42);
        let input = crate::init::randn(&[2, 2, 5, 5], 0.0, 1.0, &mut rng);
        let mut weight = crate::init::randn(&[3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let bias = crate::init::randn(&[3], 0.0, 0.5, &mut rng);

        // Scalar objective: sum of outputs.
        let loss = |w: &Tensor| -> f32 { conv2d_forward(&input, w, &bias, 1, 1).unwrap().sum() };
        let out = conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 7, 23, 50] {
            let orig = weight.data()[idx];
            weight.data_mut()[idx] = orig + eps;
            let lp = loss(&weight);
            weight.data_mut()[idx] = orig - eps;
            let lm = loss(&weight);
            weight.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.grad_weight.data()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-1 * (1.0 + analytic.abs()),
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// Finite-difference gradient check of the convolution input.
    #[test]
    fn backward_input_matches_finite_difference() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(11);
        let mut input = crate::init::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let weight = crate::init::randn(&[2, 2, 3, 3], 0.0, 0.5, &mut rng);
        let bias = Tensor::zeros(&[2]);

        let loss = |x: &Tensor| -> f32 { conv2d_forward(x, &weight, &bias, 1, 1).unwrap().sum() };
        let out = conv2d_forward(&input, &weight, &bias, 1, 1).unwrap();
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 5, 16, 31] {
            let orig = input.data()[idx];
            input.data_mut()[idx] = orig + eps;
            let lp = loss(&input);
            input.data_mut()[idx] = orig - eps;
            let lm = loss(&input);
            input.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.grad_input.data()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-1 * (1.0 + analytic.abs()),
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// The `_into` variants must be bit-identical to the allocating kernels
    /// and reuse one scratch across differently shaped calls.
    #[test]
    fn into_variants_bit_identical_to_allocating_path() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(77);
        let mut scratch = Conv2dScratch::default();
        let mut out = Tensor::zeros(&[0]);
        let mut gi = Tensor::zeros(&[0]);
        for &(batch, in_c, hw, out_c, k, stride, padding) in &[
            (1usize, 1usize, 4usize, 1usize, 2usize, 1usize, 0usize),
            (3, 2, 8, 4, 5, 1, 2),
            (2, 3, 6, 2, 3, 2, 1),
        ] {
            let input = crate::init::randn(&[batch, in_c, hw, hw], 0.0, 1.0, &mut rng);
            let weight = crate::init::randn(&[out_c, in_c, k, k], 0.0, 0.5, &mut rng);
            let bias = crate::init::randn(&[out_c], 0.0, 0.5, &mut rng);

            let expected = conv2d_forward(&input, &weight, &bias, stride, padding).unwrap();
            conv2d_forward_into(
                &input,
                &weight,
                &bias,
                stride,
                padding,
                &mut scratch,
                &mut out,
            )
            .unwrap();
            assert_eq!(out.dims(), expected.dims());
            for (a, b) in out.data().iter().zip(expected.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }

            let grad_out = crate::init::randn(expected.dims(), 0.0, 1.0, &mut rng);
            let grads = conv2d_backward(&input, &weight, &grad_out, stride, padding).unwrap();
            // Seed the accumulators to verify `+=` semantics.
            let mut gw = crate::init::randn(weight.dims(), 0.0, 0.1, &mut rng);
            let mut gb = crate::init::randn(&[out_c], 0.0, 0.1, &mut rng);
            let mut expected_gw = gw.clone();
            let mut expected_gb = gb.clone();
            expected_gw.add_assign(&grads.grad_weight).unwrap();
            expected_gb.add_assign(&grads.grad_bias).unwrap();
            conv2d_backward_into(
                &input,
                &weight,
                &grad_out,
                stride,
                padding,
                &mut scratch,
                &mut gw,
                &mut gb,
                &mut gi,
            )
            .unwrap();
            for (a, b) in gw.data().iter().zip(expected_gw.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in gb.data().iter().zip(expected_gb.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(gi.dims(), input.dims());
            for (a, b) in gi.data().iter().zip(grads.grad_input.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let input = Tensor::zeros(&[1, 2, 4, 4]);
        let weight = Tensor::zeros(&[2, 3, 3, 3]); // channel mismatch
        let bias = Tensor::zeros(&[2]);
        assert!(conv2d_forward(&input, &weight, &bias, 1, 1).is_err());
        let weight_ok = Tensor::zeros(&[2, 2, 3, 3]);
        let bias_bad = Tensor::zeros(&[3]);
        assert!(conv2d_forward(&input, &weight_ok, &bias_bad, 1, 1).is_err());
        assert!(conv2d_forward(&input, &weight_ok, &bias, 0, 1).is_err());
    }
}
