//! Dense matrix multiplication kernels.
//!
//! Three variants are provided because the linear-layer backward pass needs
//! products with one transposed operand, and materialising the transpose of
//! a large activation matrix would double memory traffic:
//!
//! * [`matmul`]     — `C = A·B`
//! * [`matmul_at_b`] — `C = Aᵀ·B`
//! * [`matmul_a_bt`] — `C = A·Bᵀ`
//!
//! The kernels parallelise over output rows with rayon once the work is
//! large enough to amortise the fork/join overhead.

use crate::error::{TensorError, TensorResult};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Below this many multiply-adds the kernels stay single-threaded.
const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

/// Computes `C = A·B` for rank-2 tensors `A: (m,k)` and `B: (k,n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> TensorResult<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (k2, n),
        });
    }
    let mut out = vec![0.0f32; m * n];
    matmul_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Computes `C = Aᵀ·B` for `A: (k,m)` and `B: (k,n)`, yielding `(m,n)`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> TensorResult<Tensor> {
    let (k, m) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (k2, n),
        });
    }
    let a_data = a.data();
    let b_data = b.data();
    let mut out = vec![0.0f32; m * n];
    // C[i][j] = sum_l A[l][i] * B[l][j]; iterate l outermost for sequential reads.
    let compute_row_block = |out: &mut [f32]| {
        for l in 0..k {
            let a_row = &a_data[l * m..(l + 1) * m];
            let b_row = &b_data[l * n..(l + 1) * n];
            for (i, &a_li) in a_row.iter().enumerate() {
                if a_li == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b_lj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_li * b_lj;
                }
            }
        }
    };
    compute_row_block(&mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Computes `C = A·Bᵀ` for `A: (m,k)` and `B: (n,k)`, yielding `(m,n)`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> TensorResult<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (n, k2) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (n, k2),
        });
    }
    let a_data = a.data();
    let b_data = b.data();
    let mut out = vec![0.0f32; m * n];
    let work = m * n * k;
    let row_job = |i: usize, out_row: &mut [f32]| {
        let a_row = &a_data[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b_data[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    };
    if work >= PARALLEL_THRESHOLD {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| row_job(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_job(i, row);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Raw kernel: `out[m×n] = a[m×k] · b[k×n]`, overwriting `out`.
///
/// Exposed for the im2col convolution which already has flat buffers.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let row_job = |i: usize, out_row: &mut [f32]| {
        out_row.iter_mut().for_each(|o| *o = 0.0);
        let a_row = &a[i * k..(i + 1) * k];
        for (l, &a_il) in a_row.iter().enumerate() {
            if a_il == 0.0 {
                continue;
            }
            let b_row = &b[l * n..(l + 1) * n];
            for (o, &b_lj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_il * b_lj;
            }
        }
    };
    if m * k * n >= PARALLEL_THRESHOLD {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| row_job(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_job(i, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = matmul(&a, &Tensor::eye(2)).unwrap();
        assert_eq!(c.data(), a.data());
        let c2 = matmul(&Tensor::eye(2), &a).unwrap();
        assert_eq!(c2.data(), a.data());
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_vector_as_row() {
        // rank-1 tensors are treated as a 1×n row.
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[1, 2]);
        assert_eq!(c.data(), &[13.0, 16.0]);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]);
        let expected = matmul(&a.transpose().unwrap(), &b).unwrap();
        let got = matmul_at_b(&a, &b).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[2, 3]);
        let expected = matmul(&a, &b.transpose().unwrap()).unwrap();
        let got = matmul_a_bt(&a, &b).unwrap();
        assert_eq!(got, expected);
    }

    proptest! {
        /// (A·B)·C == A·(B·C) within floating-point tolerance.
        #[test]
        fn prop_matmul_associative(m in 1usize..5, k in 1usize..5, n in 1usize..5, p in 1usize..5) {
            let a_data: Vec<f32> = (0..m * k).map(|x| (x % 7) as f32 - 3.0).collect();
            let b_data: Vec<f32> = (0..k * n).map(|x| (x % 5) as f32 - 2.0).collect();
            let c_data: Vec<f32> = (0..n * p).map(|x| (x % 3) as f32 - 1.0).collect();
            let a = Tensor::from_vec(a_data, &[m, k]).unwrap();
            let b = Tensor::from_vec(b_data, &[k, n]).unwrap();
            let c = Tensor::from_vec(c_data, &[n, p]).unwrap();
            let left = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
            let right = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
            for (x, y) in left.data().iter().zip(right.data().iter()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// Multiplying by the identity leaves the matrix unchanged.
        #[test]
        fn prop_identity(m in 1usize..8, n in 1usize..8) {
            let data: Vec<f32> = (0..m * n).map(|x| x as f32 * 0.5 - 3.0).collect();
            let a = Tensor::from_vec(data, &[m, n]).unwrap();
            let c = matmul(&a, &Tensor::eye(n)).unwrap();
            prop_assert_eq!(c.data(), a.data());
        }

        /// The transposed-operand kernels agree with explicit transposition.
        #[test]
        fn prop_transposed_kernels(m in 1usize..6, k in 1usize..6, n in 1usize..6) {
            let a_data: Vec<f32> = (0..k * m).map(|x| (x as f32).sin()).collect();
            let b_data: Vec<f32> = (0..k * n).map(|x| (x as f32).cos()).collect();
            let a = Tensor::from_vec(a_data, &[k, m]).unwrap();
            let b = Tensor::from_vec(b_data, &[k, n]).unwrap();
            let expected = matmul(&a.transpose().unwrap(), &b).unwrap();
            let got = matmul_at_b(&a, &b).unwrap();
            for (x, y) in expected.data().iter().zip(got.data().iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
