//! Dense matrix multiplication kernels.
//!
//! Three variants are provided because the linear-layer backward pass needs
//! products with one transposed operand, and materialising the transpose of
//! a large activation matrix would double memory traffic:
//!
//! * [`matmul`]     — `C = A·B`
//! * [`matmul_at_b`] — `C = Aᵀ·B`
//! * [`matmul_a_bt`] — `C = A·Bᵀ`
//!
//! Each has a `gemm_*_into` twin writing into a caller-owned tensor (the
//! zero-allocation training path), and [`linear_forward_into`] fuses the
//! dense-layer bias add (and optionally ReLU) into the `A·Bᵀ` sweep.
//!
//! The kernels are blocked and register-tiled: inner loops keep a small
//! tile of output accumulators in registers and stream the operands once
//! per tile, in the style of the 8-lane chunked [`crate::vecops`] kernels.
//! **Bit-identity contract:** for every output element the floating-point
//! accumulation order is exactly the naive kernel's — contributions are
//! added in increasing `l` (the contracted index) with a single accumulator
//! per element, and the naive kernels' zero-skip rules are preserved — so
//! blocked results are bit-identical to the unblocked [`reference`]
//! kernels (pinned by exactness tests, and end-to-end by the engine-parity
//! golden digest). Tiling may only regroup *which outputs* advance
//! together, never the order of adds within one output.
//!
//! The kernels parallelise over output rows with rayon once the work is
//! large enough to amortise the fork/join overhead.

use crate::error::{TensorError, TensorResult};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Below this many multiply-adds the kernels stay single-threaded.
const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

/// Register-tile width of the blocked kernels: 8 accumulators per tile,
/// matching the `vecops` lane count.
const TILE: usize = 8;

/// Column-tile width of the `A·Bᵀ` kernel: independent dot-product
/// accumulators streamed against one `A` row.
const BT_TILE: usize = 4;

/// Computes `C = A·B` for rank-2 tensors `A: (m,k)` and `B: (k,n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> TensorResult<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (k2, n),
        });
    }
    let mut out = vec![0.0f32; m * n];
    matmul_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Computes `C = A·B` into a caller-owned tensor, resizing it to `(m,n)`.
///
/// Allocation-free once `out` has capacity for the result.
pub fn gemm_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> TensorResult<()> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (k2, n),
        });
    }
    out.resize_in_place(&[m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(())
}

/// Computes `C = Aᵀ·B` for `A: (k,m)` and `B: (k,n)`, yielding `(m,n)`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> TensorResult<Tensor> {
    let (k, m) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (k2, n),
        });
    }
    let mut out = vec![0.0f32; m * n];
    matmul_at_b_into(a.data(), b.data(), &mut out, k, m, n);
    Tensor::from_vec(out, &[m, n])
}

/// Computes `C = Aᵀ·B` into a caller-owned tensor, resizing it to `(m,n)`.
pub fn gemm_at_b_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> TensorResult<()> {
    let (k, m) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (k2, n),
        });
    }
    out.resize_in_place(&[m, n]);
    matmul_at_b_into(a.data(), b.data(), out.data_mut(), k, m, n);
    Ok(())
}

/// Computes `C = A·Bᵀ` for `A: (m,k)` and `B: (n,k)`, yielding `(m,n)`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> TensorResult<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (n, k2) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (n, k2),
        });
    }
    let mut out = vec![0.0f32; m * n];
    matmul_a_bt_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Computes `C = A·Bᵀ` into a caller-owned tensor, resizing it to `(m,n)`.
pub fn gemm_a_bt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> TensorResult<()> {
    let (m, k) = a.shape().as_matrix()?;
    let (n, k2) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (n, k2),
        });
    }
    out.resize_in_place(&[m, n]);
    matmul_a_bt_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(())
}

/// The fused dense-layer forward kernel: `out = input·weightᵀ + bias`,
/// optionally through ReLU, in one sweep per output row.
///
/// `input: (m,k)`, `weight: (n,k)` (PyTorch `[out_features, in_features]`
/// layout), `bias: (n)`; `out` is resized to `(m,n)`. Bit-identical to
/// `matmul_a_bt` followed by a row-wise bias add (and a separate ReLU map):
/// each output's dot product accumulates in the same order, the bias is a
/// single add after it, and the ReLU mask test is the same `v > 0.0`.
pub fn linear_forward_into(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    out: &mut Tensor,
    relu: bool,
) -> TensorResult<()> {
    let (m, k) = input.shape().as_matrix()?;
    let (n, k2) = weight.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (n, k2),
        });
    }
    if bias.len() != n {
        return Err(TensorError::ShapeMismatch {
            left: vec![n],
            right: bias.dims().to_vec(),
        });
    }
    out.resize_in_place(&[m, n]);
    let a = input.data();
    let b = weight.data();
    let bias = bias.data();
    let out = out.data_mut();
    let row_job = |i: usize, out_row: &mut [f32]| {
        a_bt_row(&a[i * k..(i + 1) * k], b, out_row, k);
        for (o, &bias_v) in out_row.iter_mut().zip(bias.iter()) {
            *o += bias_v;
        }
        if relu {
            // `!(v > 0.0)` (not `v <= 0.0`): NaN must also collapse to 0.0,
            // exactly as the standalone ReLU layer's mask test does.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            for o in out_row.iter_mut() {
                if !(*o > 0.0) {
                    *o = 0.0;
                }
            }
        }
    };
    if m * n * k >= PARALLEL_THRESHOLD {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| row_job(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_job(i, row);
        }
    }
    Ok(())
}

/// Raw kernel: `out[m×n] = a[m×k] · b[k×n]`, overwriting `out`.
///
/// Streaming axpy form with an explicitly 8-lane-chunked inner loop: for
/// each `l` the whole contiguous `b` row is folded into the output row in
/// fixed-width lane groups, so the `a_il == 0` skip is amortised over `n`
/// multiply-adds and every memory access is sequential. (A column-tiled
/// variant that keeps output tiles in registers was measured slower here:
/// it moves the zero-skip branch inside the tile loop and turns the `b`
/// stream into strided 32-byte reads.) Exposed for the im2col convolution
/// which already has flat buffers.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let row_job = |i: usize, out_row: &mut [f32]| {
        out_row.iter_mut().for_each(|o| *o = 0.0);
        let a_row = &a[i * k..(i + 1) * k];
        for (l, &a_il) in a_row.iter().enumerate() {
            if a_il == 0.0 {
                continue;
            }
            axpy_lanes(a_il, &b[l * n..(l + 1) * n], out_row);
        }
    };
    if m * k * n >= PARALLEL_THRESHOLD {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| row_job(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_job(i, row);
        }
    }
}

/// Raw kernel: `out[m×n] = aᵀ[m×k] · b[k×n]` for `a: (k,m)`, overwriting
/// `out`.
///
/// Streaming form with an explicitly 8-lane-chunked inner loop: `l` stays
/// outermost (each `b` row is loaded once per `l` and folded into every
/// output row it contributes to), preserving increasing-`l` accumulation
/// per element and the per-element `a_li == 0` skip, so results match the
/// naive kernel bit for bit. Stays single-threaded like its predecessor
/// (the backward pass calls it at gradient shapes where fork/join overhead
/// dominates).
pub(crate) fn matmul_at_b_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.iter_mut().for_each(|o| *o = 0.0);
    for l in 0..k {
        let a_row = &a[l * m..(l + 1) * m];
        let b_row = &b[l * n..(l + 1) * n];
        for (i, &a_li) in a_row.iter().enumerate() {
            if a_li == 0.0 {
                continue;
            }
            axpy_lanes(a_li, b_row, &mut out[i * n..(i + 1) * n]);
        }
    }
}

/// `out += alpha * x` in explicit 8-lane chunks, scalar remainder tail.
///
/// The lane grouping changes neither the order nor the association of any
/// accumulation — each output element still receives exactly one
/// `alpha * x[j]` add — so callers stay bit-identical to a plain loop.
#[inline]
fn axpy_lanes(alpha: f32, x: &[f32], out: &mut [f32]) {
    let mut out_chunks = out.chunks_exact_mut(TILE);
    let mut x_chunks = x.chunks_exact(TILE);
    for (o, xs) in (&mut out_chunks).zip(&mut x_chunks) {
        let o: &mut [f32; TILE] = o.try_into().expect("exact lane chunk");
        let xs: &[f32; TILE] = xs.try_into().expect("exact lane chunk");
        for s in 0..TILE {
            o[s] += alpha * xs[s];
        }
    }
    for (o, &xv) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(x_chunks.remainder().iter())
    {
        *o += alpha * xv;
    }
}

/// One output row of the `A·Bᵀ` kernel: `out_row[j] = a_row · b[j]`.
///
/// Tiled over `BT_TILE` columns: the tile's dot products run as independent
/// single accumulators against one streaming pass of `a_row`, so `a_row`
/// is read once per tile instead of once per column. Each accumulator sums
/// in increasing `l` — the same order as a scalar dot product.
fn a_bt_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], k: usize) {
    let n = out_row.len();
    let mut j = 0;
    while j + BT_TILE <= n {
        let rows = [
            &b[j * k..(j + 1) * k],
            &b[(j + 1) * k..(j + 2) * k],
            &b[(j + 2) * k..(j + 3) * k],
            &b[(j + 3) * k..(j + 4) * k],
        ];
        let mut acc = [0.0f32; BT_TILE];
        for (l, &x) in a_row.iter().enumerate() {
            for (s, row) in acc.iter_mut().zip(rows.iter()) {
                *s += x * row[l];
            }
        }
        out_row[j..j + BT_TILE].copy_from_slice(&acc);
        j += BT_TILE;
    }
    for (o, b_row) in out_row[j..].iter_mut().zip(b[j * k..].chunks_exact(k)) {
        let mut acc = 0.0f32;
        for (x, y) in a_row.iter().zip(b_row.iter()) {
            acc += x * y;
        }
        *o = acc;
    }
}

/// Raw kernel: `out[m×n] = a[m×k] · bᵀ[k×n]` for `b: (n,k)`, overwriting
/// `out`.
pub(crate) fn matmul_a_bt_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    let row_job = |i: usize, out_row: &mut [f32]| {
        a_bt_row(&a[i * k..(i + 1) * k], b, out_row, k);
    };
    if m * n * k >= PARALLEL_THRESHOLD {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| row_job(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_job(i, row);
        }
    }
}

/// The unblocked reference kernels the blocked family is pinned against.
///
/// These are the original naive loops, kept verbatim: exactness tests
/// assert exact `f32` equality between each blocked kernel and its
/// reference at adversarial shapes, and the `gemm_kernels` criterion group
/// measures the blocked kernels' speedup over them. Not used on any hot
/// path.
pub mod reference {
    /// Naive `out[m×n] = a[m×k] · b[k×n]`.
    pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], _m: usize, k: usize, n: usize) {
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            out_row.iter_mut().for_each(|o| *o = 0.0);
            let a_row = &a[i * k..(i + 1) * k];
            for (l, &a_il) in a_row.iter().enumerate() {
                if a_il == 0.0 {
                    continue;
                }
                let b_row = &b[l * n..(l + 1) * n];
                for (o, &b_lj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_il * b_lj;
                }
            }
        }
    }

    /// Naive `out[m×n] = aᵀ · b` for `a: (k,m)`, `b: (k,n)`.
    pub fn matmul_at_b_into(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
        out.iter_mut().for_each(|o| *o = 0.0);
        for l in 0..k {
            let a_row = &a[l * m..(l + 1) * m];
            let b_row = &b[l * n..(l + 1) * n];
            for (i, &a_li) in a_row.iter().enumerate() {
                if a_li == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b_lj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_li * b_lj;
                }
            }
        }
    }

    /// Naive `out[m×n] = a · bᵀ` for `a: (m,k)`, `b: (n,k)`.
    pub fn matmul_a_bt_into(a: &[f32], b: &[f32], out: &mut [f32], _m: usize, k: usize, n: usize) {
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = matmul(&a, &Tensor::eye(2)).unwrap();
        assert_eq!(c.data(), a.data());
        let c2 = matmul(&Tensor::eye(2), &a).unwrap();
        assert_eq!(c2.data(), a.data());
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_vector_as_row() {
        // rank-1 tensors are treated as a 1×n row.
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[1, 2]);
        assert_eq!(c.data(), &[13.0, 16.0]);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]);
        let expected = matmul(&a.transpose().unwrap(), &b).unwrap();
        let got = matmul_at_b(&a, &b).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[2, 3]);
        let expected = matmul(&a, &b.transpose().unwrap()).unwrap();
        let got = matmul_a_bt(&a, &b).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn gemm_into_reuses_buffer_across_shapes() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let mut out = Tensor::zeros(&[4, 4]);
        gemm_into(&a, &b, &mut out).unwrap();
        assert_eq!(out.dims(), &[2, 2]);
        assert_eq!(out.data(), &[58.0, 64.0, 139.0, 154.0]);
        // Shrinking reuses the same buffer; the result is identical to the
        // allocating kernel.
        gemm_a_bt_into(&a, &a, &mut out).unwrap();
        assert_eq!(out, matmul_a_bt(&a, &a).unwrap());
        gemm_at_b_into(&a, &a, &mut out).unwrap();
        assert_eq!(out, matmul_at_b(&a, &a).unwrap());
    }

    #[test]
    fn linear_forward_matches_separate_ops() {
        let x = t(&[1.0, -2.0, 0.5, 3.0, 0.0, -1.0], &[2, 3]);
        let w = t(&[0.5, 1.0, -1.0, 2.0, -0.5, 0.25], &[2, 3]);
        let bias = t(&[0.1, -0.2], &[2]);
        let mut fused = Tensor::zeros(&[1]);
        linear_forward_into(&x, &w, &bias, &mut fused, false).unwrap();
        let mut expected = matmul_a_bt(&x, &w).unwrap();
        for row in 0..2 {
            for col in 0..2 {
                let v = expected.get(&[row, col]).unwrap() + bias.data()[col];
                expected.set(&[row, col], v).unwrap();
            }
        }
        assert_eq!(fused, expected);
        // The fused ReLU applies the same `v > 0` mask as a separate map.
        let mut fused_relu = Tensor::zeros(&[1]);
        linear_forward_into(&x, &w, &bias, &mut fused_relu, true).unwrap();
        let relu_expected = expected.map(|v| if v > 0.0 { v } else { 0.0 });
        assert_eq!(fused_relu, relu_expected);
    }

    /// Deterministic operand data with embedded exact zeros, so the
    /// blocked kernels' zero-skip paths run.
    fn pattern(len: usize, mul: i64, offset: i64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let v = (i as i64 * mul + offset).rem_euclid(23) - 11;
                // Roughly 1 in 8 entries is exactly zero.
                if (i as i64 + offset).rem_euclid(8) == 0 {
                    0.0
                } else {
                    v as f32 * 0.37
                }
            })
            .collect()
    }

    /// The blocked kernels are *exactly* equal to the naive reference at
    /// adversarial shapes: below, at and just past the 8-wide register
    /// tile, odd primes, and strongly non-square m/k/n.
    #[test]
    fn blocked_kernels_bit_identical_to_reference() {
        let sizes = [1usize, 7, 8, 9, 17, 33];
        let mut shapes: Vec<(usize, usize, usize)> = Vec::new();
        for &m in &sizes {
            for &k in &sizes {
                for &n in &sizes {
                    shapes.push((m, k, n));
                }
            }
        }
        // Strongly non-square shapes, including the paper's dense layers.
        shapes.extend([(1, 784, 10), (16, 784, 10), (3, 129, 65), (65, 3, 129)]);
        for (m, k, n) in shapes {
            let a_mk = pattern(m * k, 3, 1);
            let b_kn = pattern(k * n, 5, 2);
            let a_km = pattern(k * m, 7, 3);
            let b_nk = pattern(n * k, 11, 4);
            let mut got = vec![f32::NAN; m * n];
            let mut want = vec![f32::NAN; m * n];

            matmul_into(&a_mk, &b_kn, &mut got, m, k, n);
            reference::matmul_into(&a_mk, &b_kn, &mut want, m, k, n);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "matmul_into diverged at ({m},{k},{n})"
            );

            matmul_at_b_into(&a_km, &b_kn, &mut got, k, m, n);
            reference::matmul_at_b_into(&a_km, &b_kn, &mut want, k, m, n);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "matmul_at_b_into diverged at ({m},{k},{n})"
            );

            matmul_a_bt_into(&a_mk, &b_nk, &mut got, m, k, n);
            reference::matmul_a_bt_into(&a_mk, &b_nk, &mut want, m, k, n);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "matmul_a_bt_into diverged at ({m},{k},{n})"
            );
        }
    }

    proptest! {
        /// (A·B)·C == A·(B·C) within floating-point tolerance.
        #[test]
        fn prop_matmul_associative(m in 1usize..5, k in 1usize..5, n in 1usize..5, p in 1usize..5) {
            let a_data: Vec<f32> = (0..m * k).map(|x| (x % 7) as f32 - 3.0).collect();
            let b_data: Vec<f32> = (0..k * n).map(|x| (x % 5) as f32 - 2.0).collect();
            let c_data: Vec<f32> = (0..n * p).map(|x| (x % 3) as f32 - 1.0).collect();
            let a = Tensor::from_vec(a_data, &[m, k]).unwrap();
            let b = Tensor::from_vec(b_data, &[k, n]).unwrap();
            let c = Tensor::from_vec(c_data, &[n, p]).unwrap();
            let left = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
            let right = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
            for (x, y) in left.data().iter().zip(right.data().iter()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// Multiplying by the identity leaves the matrix unchanged.
        #[test]
        fn prop_identity(m in 1usize..8, n in 1usize..8) {
            let data: Vec<f32> = (0..m * n).map(|x| x as f32 * 0.5 - 3.0).collect();
            let a = Tensor::from_vec(data, &[m, n]).unwrap();
            let c = matmul(&a, &Tensor::eye(n)).unwrap();
            prop_assert_eq!(c.data(), a.data());
        }

        /// The transposed-operand kernels agree with explicit transposition.
        #[test]
        fn prop_transposed_kernels(m in 1usize..6, k in 1usize..6, n in 1usize..6) {
            let a_data: Vec<f32> = (0..k * m).map(|x| (x as f32).sin()).collect();
            let b_data: Vec<f32> = (0..k * n).map(|x| (x as f32).cos()).collect();
            let a = Tensor::from_vec(a_data, &[k, m]).unwrap();
            let b = Tensor::from_vec(b_data, &[k, n]).unwrap();
            let expected = matmul(&a.transpose().unwrap(), &b).unwrap();
            let got = matmul_at_b(&a, &b).unwrap();
            for (x, y) in expected.data().iter().zip(got.data().iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Blocked == reference at random shapes (exact equality).
        #[test]
        fn prop_blocked_matches_reference(m in 1usize..20, k in 1usize..20, n in 1usize..20) {
            let a: Vec<f32> = pattern(m * k, 13, 5);
            let b: Vec<f32> = pattern(k * n, 17, 9);
            let mut got = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            matmul_into(&a, &b, &mut got, m, k, n);
            reference::matmul_into(&a, &b, &mut want, m, k, n);
            prop_assert_eq!(&got, &want);
        }
    }
}
