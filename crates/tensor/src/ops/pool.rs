//! Batched 2-D max pooling (forward and backward).
//!
//! The paper's CNNs use 2×2 max pooling with stride 2 after each
//! convolution. The kernel is general over pool size and stride. The
//! forward pass records the flat index of each window's maximum so that the
//! backward pass can scatter gradients without recomputing the forward.

use crate::error::{TensorError, TensorResult};
use crate::tensor::Tensor;

/// Output of [`max_pool2d_forward`]: pooled values plus argmax bookkeeping.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled output, shape `[batch, channels, out_h, out_w]`.
    pub output: Tensor,
    /// For every output element, the flat index (within the *input* buffer)
    /// of the element that achieved the maximum.
    pub argmax: Vec<usize>,
}

/// Forward pass of batched 2-D max pooling.
///
/// Input shape `[batch, channels, h, w]`; output spatial size is
/// `(h - size) / stride + 1` (no padding — the paper's models pool even
/// spatial sizes exactly).
pub fn max_pool2d_forward(
    input: &Tensor,
    size: usize,
    stride: usize,
) -> TensorResult<MaxPoolOutput> {
    let mut output = Tensor::zeros(&[0]);
    let mut argmax = Vec::new();
    max_pool2d_forward_into(input, size, stride, &mut output, &mut argmax)?;
    Ok(MaxPoolOutput { output, argmax })
}

/// Forward pass of batched 2-D max pooling into caller-owned buffers.
///
/// `out` is resized to the pooled shape and `argmax` to the output element
/// count; both reuse their existing capacity, so steady-state calls are
/// allocation-free. Identical values to [`max_pool2d_forward`].
pub fn max_pool2d_forward_into(
    input: &Tensor,
    size: usize,
    stride: usize,
    out: &mut Tensor,
    argmax: &mut Vec<usize>,
) -> TensorResult<()> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
        });
    }
    if size == 0 || stride == 0 {
        return Err(TensorError::InvalidArgument(
            "pool size and stride must be positive".into(),
        ));
    }
    let [batch, channels, h, w] = [
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    ];
    if h < size || w < size {
        return Err(TensorError::InvalidArgument(format!(
            "pool window {size} larger than input {h}x{w}"
        )));
    }
    let out_h = (h - size) / stride + 1;
    let out_w = (w - size) / stride + 1;
    let data = input.data();
    out.resize_in_place(&[batch, channels, out_h, out_w]);
    let output = out.data_mut();
    argmax.clear();
    argmax.resize(output.len(), 0);

    let mut out_idx = 0usize;
    for b in 0..batch {
        for c in 0..channels {
            let plane_offset = (b * channels + c) * h * w;
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..size {
                        let iy = oy * stride + ky;
                        for kx in 0..size {
                            let ix = ox * stride + kx;
                            let idx = plane_offset + iy * w + ix;
                            let v = data[idx];
                            if v > best {
                                best = v;
                                best_idx = idx;
                            }
                        }
                    }
                    output[out_idx] = best;
                    argmax[out_idx] = best_idx;
                    out_idx += 1;
                }
            }
        }
    }
    Ok(())
}

/// Backward pass of batched 2-D max pooling.
///
/// Routes each output gradient to the input position that produced the
/// maximum in the forward pass.
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> TensorResult<Tensor> {
    let mut grad_input = Tensor::zeros(&[0]);
    max_pool2d_backward_into(grad_output, argmax, input_dims, &mut grad_input)?;
    Ok(grad_input)
}

/// Backward pass of batched 2-D max pooling into a caller-owned tensor.
///
/// `grad_input` is resized to `input_dims` (reusing capacity) and fully
/// overwritten. Identical values to [`max_pool2d_backward`].
pub fn max_pool2d_backward_into(
    grad_output: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
    grad_input: &mut Tensor,
) -> TensorResult<()> {
    if grad_output.len() != argmax.len() {
        return Err(TensorError::InvalidArgument(format!(
            "grad_output has {} elements but argmax has {}",
            grad_output.len(),
            argmax.len()
        )));
    }
    let input_len: usize = input_dims.iter().product();
    grad_input.resize_in_place(input_dims);
    let grad = grad_input.data_mut();
    grad.iter_mut().for_each(|g| *g = 0.0);
    for (&idx, &g) in argmax.iter().zip(grad_output.data().iter()) {
        if idx >= input_len {
            return Err(TensorError::InvalidArgument(format!(
                "argmax index {idx} out of bounds for input of {input_len} elements"
            )));
        }
        grad[idx] += g;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_2x2_known_values() {
        // 1x1x4x4 input with rows 0..16; 2x2/2 pooling keeps [5,7,13,15].
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let out = max_pool2d_forward(&input, 2, 2).unwrap();
        assert_eq!(out.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.output.data(), &[5.0, 7.0, 13.0, 15.0]);
        assert_eq!(out.argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn pool_odd_size_drops_remainder() {
        // 5x5 input pooled 2x2/2 gives 2x2 (the final row/col is dropped),
        // matching the paper's CNN 1 (28 -> 14 -> 7 would use even sizes; the
        // 7x7 -> flatten path never pools an odd size, but the kernel must
        // still behave sanely).
        let input = Tensor::from_vec((0..25).map(|x| x as f32).collect(), &[1, 1, 5, 5]).unwrap();
        let out = max_pool2d_forward(&input, 2, 2).unwrap();
        assert_eq!(out.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.output.data(), &[6.0, 8.0, 16.0, 18.0]);
    }

    #[test]
    fn pool_multi_channel_batch() {
        let mut input = Tensor::zeros(&[2, 2, 2, 2]);
        input.set(&[0, 0, 1, 1], 5.0).unwrap();
        input.set(&[1, 1, 0, 0], 7.0).unwrap();
        let out = max_pool2d_forward(&input, 2, 2).unwrap();
        assert_eq!(out.output.dims(), &[2, 2, 1, 1]);
        assert_eq!(out.output.data(), &[5.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let fwd = max_pool2d_forward(&input, 2, 2).unwrap();
        let grad_out = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let grad_in = max_pool2d_backward(&grad_out, &fwd.argmax, input.dims()).unwrap();
        assert_eq!(grad_in.get(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(grad_in.get(&[0, 0, 1, 3]).unwrap(), 2.0);
        assert_eq!(grad_in.get(&[0, 0, 3, 1]).unwrap(), 3.0);
        assert_eq!(grad_in.get(&[0, 0, 3, 3]).unwrap(), 4.0);
        assert_eq!(grad_in.sum(), 10.0);
    }

    #[test]
    fn backward_rejects_mismatched_lengths() {
        let grad_out = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(max_pool2d_backward(&grad_out, &[0, 1], &[1, 1, 4, 4]).is_err());
        assert!(max_pool2d_backward(&grad_out, &[0, 1, 2, 99], &[1, 1, 2, 2]).is_err());
    }

    #[test]
    fn forward_rejects_bad_arguments() {
        let input = Tensor::zeros(&[1, 1, 4, 4]);
        assert!(max_pool2d_forward(&input, 0, 2).is_err());
        assert!(max_pool2d_forward(&input, 2, 0).is_err());
        assert!(max_pool2d_forward(&input, 5, 1).is_err());
        let rank3 = Tensor::zeros(&[1, 4, 4]);
        assert!(max_pool2d_forward(&rank3, 2, 2).is_err());
    }

    /// The `_into` variants must match the allocating path exactly and reuse
    /// their buffers across differently shaped calls.
    #[test]
    fn into_variants_match_allocating_path() {
        let mut out = Tensor::zeros(&[0]);
        let mut argmax = Vec::new();
        let mut grad_in = Tensor::zeros(&[0]);
        for &(batch, channels, hw) in &[(1usize, 1usize, 4usize), (2, 3, 6), (1, 2, 5)] {
            let input = Tensor::from_vec(
                (0..batch * channels * hw * hw)
                    .map(|x| ((x * 37 + 11) % 23) as f32 - 11.0)
                    .collect(),
                &[batch, channels, hw, hw],
            )
            .unwrap();
            let expected = max_pool2d_forward(&input, 2, 2).unwrap();
            max_pool2d_forward_into(&input, 2, 2, &mut out, &mut argmax).unwrap();
            assert_eq!(out.dims(), expected.output.dims());
            assert_eq!(out.data(), expected.output.data());
            assert_eq!(argmax, expected.argmax);

            let grad_out = Tensor::ones(out.dims());
            let expected_gi = max_pool2d_backward(&grad_out, &argmax, input.dims()).unwrap();
            max_pool2d_backward_into(&grad_out, &argmax, input.dims(), &mut grad_in).unwrap();
            assert_eq!(grad_in.dims(), expected_gi.dims());
            assert_eq!(grad_in.data(), expected_gi.data());
        }
    }

    #[test]
    fn gradient_is_subgradient_of_max() {
        // Perturbing the max element changes the pooled output; perturbing a
        // non-max element does not. The backward pass must reflect exactly that.
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 9.0], &[1, 1, 2, 2]).unwrap();
        let fwd = max_pool2d_forward(&input, 2, 2).unwrap();
        let grad_out = Tensor::ones(&[1, 1, 1, 1]);
        let grad_in = max_pool2d_backward(&grad_out, &fwd.argmax, input.dims()).unwrap();
        assert_eq!(grad_in.data(), &[0.0, 0.0, 0.0, 1.0]);
    }
}
