//! Tensor operations: matrix multiplication, 2-D convolution, max pooling.
//!
//! These free functions are the compute kernels behind the layers in
//! `fedadmm-nn`. They are written against contiguous row-major buffers and
//! validated by unit tests against hand-computed values and by gradient
//! checks in the `fedadmm-nn` crate.

mod conv;
mod matmul;
mod pool;

pub use conv::{
    conv2d_backward, conv2d_backward_into, conv2d_forward, conv2d_forward_into, conv2d_output_size,
    Conv2dGrads, Conv2dScratch,
};
pub use matmul::{
    gemm_a_bt_into, gemm_at_b_into, gemm_into, linear_forward_into, matmul, matmul_a_bt,
    matmul_at_b, reference,
};
pub use pool::{
    max_pool2d_backward, max_pool2d_backward_into, max_pool2d_forward, max_pool2d_forward_into,
    MaxPoolOutput,
};
