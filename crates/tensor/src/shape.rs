//! Shape and stride bookkeeping for row-major tensors.

use crate::error::{TensorError, TensorResult};
use serde::{Deserialize, Serialize};

/// The shape of a tensor: a list of dimension sizes, outermost first.
///
/// Shapes are stored densely; tensors in this crate are always contiguous
/// and row-major, so strides can be derived on demand via
/// [`Shape::strides`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    ///
    /// A scalar is represented by an empty dimension list.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Overwrites the dimension sizes in place, reusing the existing
    /// allocation when its capacity suffices.
    pub fn set_dims(&mut self, dims: &[usize]) {
        self.dims.clear();
        self.dims.extend_from_slice(dims);
    }

    /// Returns the number of dimensions (the rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements described by this shape.
    ///
    /// The empty shape (a scalar) has one element.
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides for this shape, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat offset.
    ///
    /// Returns an error if the index rank or any coordinate is out of
    /// bounds.
    pub fn flat_index(&self, index: &[usize]) -> TensorResult<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut offset = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            offset += i * strides[axis];
        }
        Ok(offset)
    }

    /// Checks whether two shapes agree exactly.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }

    /// Interprets this shape as a 2-D matrix `(rows, cols)`.
    ///
    /// Rank-1 shapes are treated as a single row.
    pub fn as_matrix(&self) -> TensorResult<(usize, usize)> {
        match self.dims.len() {
            1 => Ok((1, self.dims[0])),
            2 => Ok((self.dims[0], self.dims[1])),
            r => Err(TensorError::RankMismatch {
                expected: 2,
                actual: r,
            }),
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn num_elements_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).num_elements(), 24);
        assert_eq!(Shape::new(&[]).num_elements(), 1);
        assert_eq!(Shape::new(&[0, 5]).num_elements(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
        assert!(Shape::new(&[]).strides().is_empty());
    }

    #[test]
    fn flat_index_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.flat_index(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.flat_index(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.flat_index(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn flat_index_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.flat_index(&[2, 0]).is_err());
        assert!(s.flat_index(&[0]).is_err());
        assert!(s.flat_index(&[0, 3]).is_err());
    }

    #[test]
    fn as_matrix_shapes() {
        assert_eq!(Shape::new(&[5]).as_matrix().unwrap(), (1, 5));
        assert_eq!(Shape::new(&[4, 7]).as_matrix().unwrap(), (4, 7));
        assert!(Shape::new(&[2, 2, 2]).as_matrix().is_err());
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    proptest! {
        /// Every valid multi-index maps to a distinct flat offset below the
        /// element count (a bijection onto 0..n for contiguous tensors).
        #[test]
        fn prop_flat_index_in_bounds(d0 in 1usize..6, d1 in 1usize..6, d2 in 1usize..6) {
            let s = Shape::new(&[d0, d1, d2]);
            let mut seen = std::collections::HashSet::new();
            for i in 0..d0 {
                for j in 0..d1 {
                    for k in 0..d2 {
                        let off = s.flat_index(&[i, j, k]).unwrap();
                        prop_assert!(off < s.num_elements());
                        prop_assert!(seen.insert(off));
                    }
                }
            }
            prop_assert_eq!(seen.len(), s.num_elements());
        }

        /// Strides of the outermost axis times its size equals the total
        /// element count.
        #[test]
        fn prop_strides_consistent(dims in proptest::collection::vec(1usize..8, 1..4)) {
            let s = Shape::new(&dims);
            let strides = s.strides();
            prop_assert_eq!(strides[0] * dims[0], s.num_elements());
        }
    }
}
