//! Random tensor initialisation helpers.
//!
//! All helpers take an explicit RNG so that experiments are reproducible:
//! the paper reports results averaged over five seeded runs, and the
//! reproduction harness does the same.

use crate::tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// Samples a tensor with i.i.d. `N(mean, std²)` entries.
pub fn randn(dims: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    let normal = Normal::new(mean, std.max(f32::EPSILON)).expect("valid normal parameters");
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = normal.sample(rng);
    }
    t
}

/// Samples a tensor with i.i.d. `Uniform(low, high)` entries.
pub fn rand_uniform(dims: &[usize], low: f32, high: f32, rng: &mut impl Rng) -> Tensor {
    assert!(low < high, "rand_uniform requires low < high");
    let uniform = Uniform::new(low, high);
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = uniform.sample(rng);
    }
    t
}

/// Kaiming / He uniform initialisation for layers followed by ReLU.
///
/// Samples `Uniform(-b, b)` with `b = sqrt(6 / fan_in)`; this is PyTorch's
/// default for `Conv2d`/`Linear` up to the gain constant, and is what the
/// paper's PyTorch reference implementation uses implicitly.
pub fn kaiming_uniform(dims: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    rand_uniform(dims, -bound, bound, rng)
}

/// Xavier / Glorot uniform initialisation.
///
/// Samples `Uniform(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    rand_uniform(dims, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn randn_statistics() {
        let mut rng = SmallRng::seed_from_u64(7);
        let t = randn(&[10_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance was {var}");
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let t = rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.max() <= 0.5);
        assert!(t.min() >= -0.5);
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn rand_uniform_bad_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        rand_uniform(&[4], 1.0, 1.0, &mut rng);
    }

    #[test]
    fn kaiming_bound_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let fan_in = 25;
        let bound = (6.0f32 / fan_in as f32).sqrt();
        let t = kaiming_uniform(&[500], fan_in, &mut rng);
        assert!(t.max() <= bound);
        assert!(t.min() >= -bound);
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let bound = (6.0f32 / 40.0).sqrt();
        let t = xavier_uniform(&[500], 30, 10, &mut rng);
        assert!(t.max() <= bound);
        assert!(t.min() >= -bound);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        let ta = randn(&[32], 0.0, 1.0, &mut a);
        let tb = randn(&[32], 0.0, 1.0, &mut b);
        assert_eq!(ta, tb);
    }
}
