//! # fedadmm-tensor
//!
//! A small, dependency-light dense tensor library used as the numerical
//! substrate of the FedADMM reproduction. It provides exactly what the
//! paper's models need and nothing more:
//!
//! * row-major `f32` tensors with arbitrary rank ([`Tensor`]),
//!   shape/stride bookkeeping ([`Shape`]) and checked indexing,
//! * elementwise arithmetic, scalar ops, reductions, and in-place BLAS-1
//!   style helpers (`axpy`, `scale`, dot products, norms),
//! * batched matrix multiplication ([`ops::matmul`]),
//! * 2-D convolution with 'same' padding via im2col ([`ops::conv2d`]) and
//!   its input/weight gradients,
//! * 2×2 max pooling with argmax bookkeeping for the backward pass
//!   ([`ops::max_pool2d`]),
//! * random initialisation helpers used by the network layers ([`init`]).
//!
//! The library intentionally avoids external BLAS so that the whole
//! reproduction builds offline from vendored crates only; the inner matmul
//! kernel is cache-blocked and parallelised with rayon which is plenty for
//! the paper's CNN 1 / CNN 2 models at simulation scale.
//!
//! ## Example
//!
//! ```
//! use fedadmm_tensor::{Tensor, ops};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = ops::matmul(&a, &b).unwrap();
//! assert_eq!(c.data(), a.data());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod init;
pub mod ops;
pub mod shape;
pub mod tensor;
pub mod vecops;

pub use error::{TensorError, TensorResult};
pub use shape::Shape;
pub use tensor::Tensor;
