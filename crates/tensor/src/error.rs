//! Error types for tensor operations.
//!
//! Every fallible operation in this crate returns [`TensorResult`]. The
//! error enum is deliberately small and carries enough context (the shapes
//! or indices involved) to make shape bugs in higher layers easy to track
//! down without a debugger.

use std::fmt;

/// Result alias used throughout the tensor crate.
pub type TensorResult<T> = Result<T, TensorError>;

/// Errors produced by tensor construction and tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the number of elements
    /// implied by the requested shape.
    DataShapeMismatch {
        /// Length of the data buffer provided by the caller.
        data_len: usize,
        /// Number of elements implied by the shape.
        shape_len: usize,
    },
    /// Two tensors participating in an elementwise operation have
    /// incompatible shapes.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The tensor does not have the rank required by the operation.
    RankMismatch {
        /// Rank expected by the operation.
        expected: usize,
        /// Rank of the tensor that was actually supplied.
        actual: usize,
    },
    /// Inner dimensions of a matrix multiplication do not agree.
    MatmulDimMismatch {
        /// `(rows, cols)` of the left operand.
        left: (usize, usize),
        /// `(rows, cols)` of the right operand.
        right: (usize, usize),
    },
    /// A multi-dimensional index is out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor's shape.
        shape: Vec<usize>,
    },
    /// A reshape was requested to a shape with a different element count.
    InvalidReshape {
        /// Element count of the source tensor.
        from: usize,
        /// Element count implied by the requested shape.
        to: usize,
    },
    /// An operation-specific invariant was violated (message explains).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataShapeMismatch {
                data_len,
                shape_len,
            } => write!(
                f,
                "data length {data_len} does not match shape element count {shape_len}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected rank {expected}, got {actual}")
            }
            TensorError::MatmulDimMismatch { left, right } => write!(
                f,
                "matmul dimension mismatch: ({}x{}) * ({}x{})",
                left.0, left.1, right.0, right.1
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidReshape { from, to } => {
                write!(
                    f,
                    "cannot reshape tensor with {from} elements into shape with {to} elements"
                )
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_data_shape_mismatch() {
        let e = TensorError::DataShapeMismatch {
            data_len: 3,
            shape_len: 4,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![3, 2],
        };
        let s = e.to_string();
        assert!(s.contains("[2, 3]"));
        assert!(s.contains("[3, 2]"));
    }

    #[test]
    fn display_matmul_mismatch() {
        let e = TensorError::MatmulDimMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn display_invalid_argument() {
        let e = TensorError::InvalidArgument("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TensorError::InvalidArgument("x".into()));
    }
}
