//! Offline subset of `serde`: a value-tree serialization framework.
//!
//! Upstream serde is a zero-copy streaming framework; this vendored subset
//! trades that generality for simplicity, routing everything through an
//! owned JSON-like [`value::Value`] tree. The public surface the workspace
//! uses is identical: `#[derive(Serialize, Deserialize)]` (provided by the
//! vendored `serde_derive` proc-macro) plus the `serde_json` functions.
//!
//! The derive macros generate externally-tagged representations matching
//! upstream serde's defaults (unit variants as strings, newtype variants as
//! single-key objects, newtype structs as their inner value), so JSON
//! produced by this subset looks like what upstream serde would emit.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// Error produced when deserializing from a [`Value`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::msg("expected a boolean"))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::msg("expected a string"))
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| DeError::msg("expected an unsigned integer"))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg("unsigned integer out of range"))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| DeError::msg("expected an integer"))?;
                <$t>::try_from(raw).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::msg("expected a number"))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::msg("expected a number"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let arr = value
            .as_array()
            .ok_or_else(|| DeError::msg("expected an array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let arr = value
            .as_array()
            .ok_or_else(|| DeError::msg("expected an array"))?;
        if arr.len() != 2 {
            return Err(DeError::msg("expected a 2-element array"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

/// Support functions for the code generated by the vendored `serde_derive`.
/// Not part of the public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Value};

    /// Looks up a named struct field in an object value.
    pub fn field<'a>(
        value: &'a Value,
        key: &'static str,
        ty: &'static str,
    ) -> Result<&'a Value, DeError> {
        let obj = value
            .as_object()
            .ok_or_else(|| DeError::msg(format!("expected an object for {ty}")))?;
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::msg(format!("missing field `{key}` for {ty}")))
    }

    /// Like [`field`], but a missing key yields `None` instead of an error —
    /// the lookup behind `#[serde(default)]` / `#[serde(default = "path")]`.
    pub fn field_opt<'a>(
        value: &'a Value,
        key: &'static str,
        ty: &'static str,
    ) -> Result<Option<&'a Value>, DeError> {
        let obj = value
            .as_object()
            .ok_or_else(|| DeError::msg(format!("expected an object for {ty}")))?;
        Ok(obj.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Looks up a tuple element in an array value of the expected length.
    pub fn tuple_elem<'a>(
        value: &'a Value,
        idx: usize,
        len: usize,
        ty: &'static str,
    ) -> Result<&'a Value, DeError> {
        let arr = value
            .as_array()
            .ok_or_else(|| DeError::msg(format!("expected an array for {ty}")))?;
        if arr.len() != len {
            return Err(DeError::msg(format!(
                "expected {len} elements for {ty}, found {}",
                arr.len()
            )));
        }
        Ok(&arr[idx])
    }

    /// Splits an externally-tagged enum value into `(variant, content)`.
    /// A bare string is a unit variant; a single-key object carries content.
    pub fn variant<'a>(
        value: &'a Value,
        ty: &'static str,
    ) -> Result<(&'a str, Option<&'a Value>), DeError> {
        match value {
            Value::String(s) => Ok((s.as_str(), None)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            _ => Err(DeError::msg(format!(
                "expected a variant string or single-key object for {ty}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_impl_roundtrips() {
        assert_eq!(usize::from_value(&5usize.to_value()).unwrap(), 5);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"x".to_value()).unwrap(), "x");
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Some(3u32).to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn integer_fidelity_preserved() {
        // usize::MAX must survive the value tree (f64 could not hold it).
        let v = usize::MAX.to_value();
        assert_eq!(usize::from_value(&v).unwrap(), usize::MAX);
    }
}
