//! The owned JSON-like value tree shared by `serde` and `serde_json`.

/// A JSON number, preserving integer fidelity (like `serde_json::Number`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i64`, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An owned JSON value (`null`, booleans, numbers, strings, arrays and
/// objects). Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map of string keys to values.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object (slice of key/value entries), if it is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup: `value.get("key")` on objects, `value.get(3)` on
    /// arrays (mirrors `serde_json::Value::get`).
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// An index usable with [`Value::get`]: a string key or an array position.
pub trait ValueIndex {
    /// Looks `self` up in `value`.
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for str {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        match value {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == self).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        (**self).index_into(value)
    }
}

impl ValueIndex for String {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(value)
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        match value {
            Value::Array(items) => items.get(*self),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.get(idx).unwrap_or(&NULL)
    }
}

impl std::fmt::Display for Value {
    /// Prints the value as compact JSON (mirroring `serde_json::Value`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::Number(Number::PosInt(v)) => write!(f, "{v}"),
            Value::Number(Number::NegInt(v)) => write!(f, "{v}"),
            Value::Number(Number::Float(v)) => {
                if v.is_finite() {
                    write!(f, "{v:?}")
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (key, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, key)?;
                    write!(f, ":{item}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::PosInt(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Value::Number(Number::PosInt(v as u64))
        } else {
            Value::Number(Number::NegInt(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_on_objects_and_arrays() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Bool(true)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Null, Value::from(2u64)]),
            ),
        ]);
        assert_eq!(v.get("a").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get(1).unwrap().as_u64(), Some(2));
        assert!(v.get("missing").is_none());
        assert_eq!(v["b"][1].as_u64(), Some(2));
        assert!(v["nope"].is_null());
    }

    #[test]
    fn number_conversions() {
        assert_eq!(Number::PosInt(u64::MAX).as_u64(), Some(u64::MAX));
        assert_eq!(Number::NegInt(-3).as_i64(), Some(-3));
        assert_eq!(Number::Float(2.5).as_u64(), None);
        assert_eq!(Number::Float(3.0).as_i64(), Some(3));
    }
}
