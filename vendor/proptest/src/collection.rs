//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// A length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut SmallRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut SmallRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut SmallRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut SmallRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length comes from `size`.
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

/// Creates a [`VecStrategy`] (mirror of `proptest::collection::vec`).
pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
