//! Offline property-testing shim with the subset of the `proptest` API this
//! workspace uses: the [`proptest!`] macro, range and `any::<T>()`
//! strategies, `proptest::collection::vec`, `prop_assert!` /
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! case index and message and panics immediately. Case generation is
//! deterministic per test (seeded from the test name), so failures
//! reproduce.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

/// Common imports for tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, TestCaseError,
    };
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Drives the random cases of one property (used by [`proptest!`]).
pub struct TestRunner {
    config: ProptestConfig,
    rng: SmallRng,
}

impl TestRunner {
    /// Creates a runner for the named property, deterministically seeded.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the test name
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The case-generation RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// Generates one value from a strategy (used by [`proptest!`]).
pub fn generate<S: strategy::Strategy>(strategy: &S, runner: &mut TestRunner) -> S::Value {
    strategy.generate(runner.rng())
}

/// Declares property tests. Each function runs `cases` times with freshly
/// generated inputs; `prop_assert!`-style failures report the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __runner = $crate::TestRunner::new(__config, stringify!($name));
                for __case in 0..__runner.cases() {
                    $(let $arg = $crate::generate(&$strat, &mut __runner);)*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __runner.cases(),
                            e.0
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vectors_respect_length_strategies(
            v in crate::collection::vec(-5.0f32..5.0, 8),
            w in crate::collection::vec(0usize..3, 1..6),
        ) {
            prop_assert_eq!(v.len(), 8);
            prop_assert!((1..6).contains(&w.len()));
            prop_assert!(w.iter().all(|&x| x < 3));
        }

        #[test]
        fn any_u64_works(seed in any::<u64>()) {
            let _ = seed; // just exercising generation
            prop_assert!(true);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
