//! Value-generation strategies (no shrinking).

use rand::rngs::SmallRng;
use rand::Rng;

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The `any::<T>()` strategy: the type's full value range.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates the [`Any`] strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty : $via:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen::<$via>() as $t
            }
        }
    )*};
}

impl_any_int!(u8: u64, u16: u64, u32: u64, u64: u64, usize: u64, i8: u64, i16: u64, i32: u64, i64: u64, isize: u64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen::<bool>()
    }
}

/// A fixed-value strategy (proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}
