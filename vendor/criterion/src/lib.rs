//! Offline micro-benchmark harness exposing the `criterion` API surface the
//! bench suite uses: [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing model: each benchmark is warmed up once, then run for
//! `sample_size` samples of adaptively chosen iteration counts; the mean
//! and min per-iteration time are printed. No statistics files are written.

use std::time::{Duration, Instant};

/// Re-export used by some criterion consumers (`criterion::black_box`).
pub use std::hint::black_box;

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration durations (one per sample).
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up call, also used to size the per-sample iteration count.
        let warm_start = Instant::now();
        black_box(routine());
        let warm = warm_start.elapsed();
        // Aim for ~10ms per sample, clamped to [1, 1000] iterations.
        let iters = if warm.is_zero() {
            1000
        } else {
            ((Duration::from_millis(10).as_nanos() / warm.as_nanos().max(1)) as usize)
                .clamp(1, 1000)
        };
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.results.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_benchmark(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut bencher);
    if bencher.results.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.results.iter().sum();
    let mean = total / bencher.results.len() as u32;
    let min = bencher.results.iter().min().copied().unwrap_or_default();
    println!("{label:<50} mean {mean:>12.3?}   min {min:>12.3?}");
}

/// The benchmark manager (mirror of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies CLI-style configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, |b| f(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\n── bench group: {name} ──");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
        }
    }

    /// Runs all registered benchmark groups (invoked by [`criterion_main!`]).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted and ignored (API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Runs a benchmark that receives a reference to `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut count = 0u32;
        c.bench_function("counting", |b| b.iter(|| count = count.wrapping_add(1)));
        assert!(count > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 10), &10usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 3 + 4));
        group.finish();
    }
}
