//! Offline subset of `serde_json`: JSON text ⇄ the vendored serde
//! [`Value`] tree, plus the [`json!`] literal macro.

pub use serde::value::{Number, Value};

/// Error produced by JSON (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Builds a [`Value`] from a JSON literal with interpolated expressions
/// (a trimmed-down port of `serde_json::json!`'s TT muncher).
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => { $crate::json_internal!($($json)+) };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ----- array muncher -------------------------------------------------
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object muncher ------------------------------------------------
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).to_string(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).to_string(), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ----- entry points --------------------------------------------------
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object(vec![]) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            #[allow(clippy::vec_init_then_push)]
            let mut object: Vec<(String, $crate::Value)> = Vec::new();
            #[allow(clippy::vec_init_then_push)]
            {
                $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            }
            object
        })
    };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value serializes") };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                // `{:?}` prints the shortest representation that roundtrips.
                let s = format!("{v:?}");
                out.push_str(&s);
            } else {
                // JSON has no Inf/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::msg(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 {
                        return Ok(Value::Number(Number::NegInt(-(v as i64))));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::msg(format!("expected `,` or `]`, found {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => return Err(Error::msg(format!("expected `,` or `}}`, found {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "name": "fedadmm",
            "rho": 0.01,
            "clients": 100,
            "nested": [1, 2.5, null, true, {"k": "v"}],
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_contains_newlines() {
        let v = json!({"a": [1, 2]});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integer_fidelity() {
        let text = format!("{}", u64::MAX);
        let v: Value = from_str(&text).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("a\"b\\c\nd\u{1}".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_macro_interpolation() {
        let rho = 0.25f64;
        let label = "x";
        let v = json!({"rho": rho, "label": label, "flag": true});
        assert_eq!(v["rho"].as_f64(), Some(0.25));
        assert_eq!(v["label"].as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
