//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in a fully offline environment, so the handful of
//! `rand` APIs the FedADMM reproduction uses are vendored here instead of
//! being fetched from crates.io. The subset is deliberately small:
//!
//! * [`RngCore`] / [`SeedableRng`] / the [`Rng`] extension trait,
//! * [`rngs::SmallRng`] — a xoshiro256++ generator seeded via SplitMix64,
//! * [`rngs::mock::StepRng`] — the deterministic counter used by tests,
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! The streams produced are *not* bit-compatible with upstream `rand`; every
//! consumer in this workspace only relies on determinism-under-seed and
//! statistical uniformity, both of which hold.

pub mod rngs;
pub mod seq;

/// The core of a random number generator: a source of uniform `u32`/`u64`.
pub trait RngCore {
    /// Returns the next uniform `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next uniform `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for the vendored generators).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = uniform_u128(rng, span);
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span == 0 {
                    // Full-width range: any value is uniform.
                    return rng.next_u64() as $t;
                }
                let v = uniform_u128(rng, span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` via 64-bit widening multiply (Lemire).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Widening-multiply rejection sampling: unbiased and branch-light.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            let m = (v as u128) * (span as u128);
            if (m as u64) <= zone {
                return m >> 64;
            }
        }
    } else {
        // Ranges wider than u64 never occur in this workspace; fall back to
        // a simple (possibly biased by < 2^-63) reduction.
        ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty : $bits:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = unit_float(rng) as $t; // in [0, 1)
                let v = low + unit * (high - low);
                if v >= high { low } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = unit_float(rng) as $t;
                (low + unit * (high - low)).clamp(low, high)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32: 24, f64: 53);

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_float<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Values producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample {
    /// Samples a value with the standard distribution for the type.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_float(rng) as f32
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_float(rng)
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience methods on every [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` half-open or `a..=b` inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: probability {p} outside [0, 1]"
        );
        unit_float(self) < p
    }

    /// Samples a value with the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }

    /// Samples from a distribution (mirror of `Rng::sample`).
    fn sample<T, D: crate::distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal mirror of `rand::distributions` (only what [`Rng::sample`] needs).
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws a sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=5usize);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let p = rng.gen_range(f64::EPSILON..1.0);
            assert!(p > 0.0 && p < 1.0);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
        let mean: f64 = (0..2000)
            .map(|_| rng.gen_range(1..=20usize) as f64)
            .sum::<f64>()
            / 2000.0;
        assert!((mean - 10.5).abs() < 0.8, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn dyn_rngcore_supports_rng_methods() {
        let mut rng = SmallRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0usize..10);
        assert!(v < 10);
        let _ = dyn_rng.gen_bool(0.5);
    }
}
