//! Concrete generators: [`SmallRng`] and the deterministic [`mock::StepRng`].

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG (xoshiro256++).
///
/// Deterministic under [`SeedableRng::seed_from_u64`]; the stream is not
/// bit-compatible with upstream `rand`'s `SmallRng`, which this workspace
/// never relies on.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(word);
        }
        // xoshiro must not start from the all-zero state.
        if s.iter().all(|&w| w == 0) {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                1,
            ];
        }
        SmallRng { s }
    }
}

/// Mock generators for tests.
pub mod mock {
    use crate::RngCore;

    /// A deterministic counter "generator": yields `initial`, `initial +
    /// increment`, … — exactly like `rand::rngs::mock::StepRng`.
    #[derive(Debug, Clone)]
    pub struct StepRng {
        v: u64,
        increment: u64,
    }

    impl StepRng {
        /// Creates a `StepRng` yielding `initial`, then adding `increment`
        /// after each output.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                v: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.v;
            self.v = self.v.wrapping_add(self.increment);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_rng_counts() {
        let mut rng = mock::StepRng::new(5, 2);
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 7);
        assert_eq!(rng.next_u64(), 9);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }
}
