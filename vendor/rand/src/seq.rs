//! Sequence-related helpers: the [`SliceRandom`] extension trait.

use crate::{Rng, RngCore};

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen reference, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in sorted order");
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
