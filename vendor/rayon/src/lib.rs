//! Offline, `std::thread`-backed subset of `rayon`.
//!
//! Provides the parallel-iterator shapes this workspace actually uses —
//! `par_chunks_mut(..).enumerate().for_each(..)` and
//! `(a..b).into_par_iter().map(..).collect()` — implemented with scoped OS
//! threads and static partitioning. Results are always produced in input
//! order, so every caller observes deterministic output regardless of the
//! thread schedule.

use std::ops::Range;

/// Everything a `use rayon::prelude::*` consumer needs.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelSliceMut};
}

/// Number of worker threads used by the parallel helpers.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Mutable-slice extension providing `par_chunks_mut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel version of `chunks_mut`: the returned adapter distributes
    /// the chunks over worker threads on `for_each`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel adapter over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Applies `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel adapter over mutable chunks of a slice.
pub struct EnumerateParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> EnumerateParChunksMut<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair, distributing the chunks
    /// over scoped worker threads (round-robin static partitioning).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> =
            self.slice.chunks_mut(self.chunk_size).enumerate().collect();
        let workers = current_num_threads().min(chunks.len()).max(1);
        if workers <= 1 {
            for item in chunks {
                f(item);
            }
            return;
        }
        let mut parts: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (k, item) in chunks.into_iter().enumerate() {
            parts[k % workers].push(item);
        }
        let f = &f;
        std::thread::scope(|scope| {
            for part in parts {
                scope.spawn(move || {
                    for item in part {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Conversion into a parallel iterator (`(0..n).into_par_iter()`).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type ParIter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::ParIter;
}

impl IntoParallelIterator for Range<usize> {
    type ParIter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// A parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index through `f` (lazily; runs on `collect`).
    pub fn map<F, R>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Runs `f` for every index in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let _: Vec<()> = self.map(&f).collect();
    }
}

/// A mapped parallel range, awaiting `collect`.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Evaluates the map in parallel (contiguous block partitioning) and
    /// collects the results **in input order**.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: FromParallelIterator<R>,
    {
        let len = self.range.len();
        let start = self.range.start;
        let workers = current_num_threads().min(len).max(1);
        let ordered: Vec<R> = if workers <= 1 {
            (start..start + len).map(&self.f).collect()
        } else {
            let block = len.div_ceil(workers);
            let f = &self.f;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|t| {
                        let lo = start + t * block;
                        let hi = (lo + block).min(start + len);
                        scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
                    })
                    .collect();
                let mut out = Vec::with_capacity(len);
                for handle in handles {
                    out.extend(handle.join().expect("rayon shim worker panicked"));
                }
                out
            })
        };
        C::from_ordered(ordered)
    }
}

/// Collection from an ordered buffer of parallel-map results.
pub trait FromParallelIterator<R>: Sized {
    /// Builds the collection from results in input order.
    fn from_ordered(items: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered(items: Vec<R>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += i as u64 + 1;
            }
        });
        let expected: Vec<u64> = (0..1003).map(|k| (k / 10) as u64 + 1).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let squares: Vec<usize> = (0..997usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..997).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_collect_into_result_short_circuits() {
        let ok: Result<Vec<usize>, String> = (0..100usize).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<usize>, String> = (0..100usize)
            .into_par_iter()
            .map(|i| {
                if i == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
