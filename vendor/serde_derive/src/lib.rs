//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! subset. No `syn`/`quote` — the item is parsed directly from the token
//! stream, which is sufficient for the shapes this workspace uses:
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple or struct-like.
//!
//! Representation (matching upstream serde's externally-tagged defaults):
//! named structs → objects, newtype structs → the inner value, tuple
//! structs → arrays, unit variants → strings, data variants → single-key
//! objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => gen_serialize(&name, &shape)
            .parse()
            .expect("serde_derive generated invalid Serialize impl"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => gen_deserialize(&name, &shape)
            .parse()
            .expect("serde_derive generated invalid Deserialize impl"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected a type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — attribute (including doc comments).
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

/// Advances past a type expression up to (and past) the next top-level `,`.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Counts tuple-struct / tuple-variant fields (top-level comma segments).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        // A segment exists if there is at least one non-comma token.
        count += 1;
        skip_type_until_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip to the next variant (past discriminants and the comma).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(0) | Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__value, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(0) | Shape::UnitStruct => format!("Ok({name})"),
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_value(::serde::__private::tuple_elem(__value, {k}, {n}, \"{name}\")?)?"
                    )
                })
                .collect();
            format!("Ok({name}({}))", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!("\"{vn}\" => Ok({name}::{vn})"),
                        VariantKind::Tuple(1) => format!(
                            "\"{vn}\" => {{ let __c = __content.ok_or_else(|| ::serde::DeError::msg(\"variant {vn} of {name} expects data\"))?; Ok({name}::{vn}(::serde::Deserialize::from_value(__c)?)) }}"
                        ),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_value(::serde::__private::tuple_elem(__c, {k}, {n}, \"{name}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __c = __content.ok_or_else(|| ::serde::DeError::msg(\"variant {vn} of {name} expects data\"))?; Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__c, \"{f}\", \"{name}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __c = __content.ok_or_else(|| ::serde::DeError::msg(\"variant {vn} of {name} expects data\"))?; Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__tag, __content) = ::serde::__private::variant(__value, \"{name}\")?;\n\
                 match __tag {{ {}, __other => Err(::serde::DeError::msg(format!(\"unknown variant `{{__other}}` for {name}\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
