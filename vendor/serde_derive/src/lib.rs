//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! subset. No `syn`/`quote` — the item is parsed directly from the token
//! stream, which is sufficient for the shapes this workspace uses:
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple or struct-like.
//!
//! Representation (matching upstream serde's externally-tagged defaults):
//! named structs → objects, newtype structs → the inner value, tuple
//! structs → arrays, unit variants → strings, data variants → single-key
//! objects.
//!
//! Field attributes: `#[serde(default)]` and `#[serde(default = "path")]`
//! are honored on named struct fields — a missing key deserializes to
//! `Default::default()` (or `path()`), matching upstream semantics for
//! schema evolution. All other `#[serde(...)]` attributes are rejected at
//! compile time rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Field {
    name: String,
    /// `None` = required; `Some(None)` = `#[serde(default)]`;
    /// `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => gen_serialize(&name, &shape)
            .parse()
            .expect("serde_derive generated invalid Serialize impl"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => gen_deserialize(&name, &shape)
            .parse()
            .expect("serde_derive generated invalid Deserialize impl"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected a type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — attribute (including doc comments).
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names plus any
/// `#[serde(default)]` / `#[serde(default = "path")]` annotations.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default: Option<Option<String>> = None;
        // Consume attributes and visibility, inspecting `#[serde(...)]`.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if let Some(d) = parse_serde_attr(g.stream())? {
                            default = Some(d);
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1; // `pub(crate)` etc.
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Inspects one attribute body (the tokens inside `#[...]`). Returns the
/// default spec when it is a supported `serde(...)` attribute, `None` for
/// non-serde attributes (doc comments etc.), and an error for serde
/// attributes this vendored subset does not implement.
fn parse_serde_attr(stream: TokenStream) -> Result<Option<Option<String>>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(None),
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return Err("malformed #[serde] attribute".to_string());
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    match args.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => match args.get(1) {
            None => Ok(Some(None)),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => match args.get(2) {
                Some(TokenTree::Literal(lit)) => {
                    let raw = lit.to_string();
                    let path = raw.trim_matches('"').to_string();
                    if path.is_empty() || path == raw {
                        Err(format!(
                            "expected a string path in serde(default = …), found {raw}"
                        ))
                    } else {
                        Ok(Some(Some(path)))
                    }
                }
                other => Err(format!(
                    "expected a path literal after serde(default =), found {other:?}"
                )),
            },
            other => Err(format!("unsupported serde(default …) form: {other:?}")),
        },
        other => Err(format!(
            "the vendored serde_derive only supports serde(default …), found {other:?}"
        )),
    }
}

/// Advances past a type expression up to (and past) the next top-level `,`.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Counts tuple-struct / tuple-variant fields (top-level comma segments).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        // A segment exists if there is at least one non-comma token.
        count += 1;
        skip_type_until_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip to the next variant (past discriminants and the comma).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(0) | Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// One `field: <expr>` initializer for a named field, honoring its default.
fn named_field_init(f: &Field, value: &str, ty: &str) -> String {
    let n = &f.name;
    match &f.default {
        None => format!(
            "{n}: ::serde::Deserialize::from_value(::serde::__private::field({value}, \"{n}\", \"{ty}\")?)?"
        ),
        Some(fallback) => {
            let missing = match fallback {
                None => "::std::default::Default::default()".to_string(),
                Some(path) => format!("{path}()"),
            };
            format!(
                "{n}: match ::serde::__private::field_opt({value}, \"{n}\", \"{ty}\")? {{ \
                 Some(__v) => ::serde::Deserialize::from_value(__v)?, None => {missing} }}"
            )
        }
    }
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| named_field_init(f, "__value", name))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(0) | Shape::UnitStruct => format!("Ok({name})"),
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_value(::serde::__private::tuple_elem(__value, {k}, {n}, \"{name}\")?)?"
                    )
                })
                .collect();
            format!("Ok({name}({}))", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!("\"{vn}\" => Ok({name}::{vn})"),
                        VariantKind::Tuple(1) => format!(
                            "\"{vn}\" => {{ let __c = __content.ok_or_else(|| ::serde::DeError::msg(\"variant {vn} of {name} expects data\"))?; Ok({name}::{vn}(::serde::Deserialize::from_value(__c)?)) }}"
                        ),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_value(::serde::__private::tuple_elem(__c, {k}, {n}, \"{name}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __c = __content.ok_or_else(|| ::serde::DeError::msg(\"variant {vn} of {name} expects data\"))?; Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| named_field_init(f, "__c", name))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __c = __content.ok_or_else(|| ::serde::DeError::msg(\"variant {vn} of {name} expects data\"))?; Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__tag, __content) = ::serde::__private::variant(__value, \"{name}\")?;\n\
                 match __tag {{ {}, __other => Err(::serde::DeError::msg(format!(\"unknown variant `{{__other}}` for {name}\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
