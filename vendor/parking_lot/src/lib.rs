//! Offline shim over `std::sync` exposing the (non-poisoning) `parking_lot`
//! API surface this workspace uses: [`RwLock`] and [`Mutex`].

/// A reader–writer lock whose guards are returned directly (no poisoning),
/// mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex whose guard is returned directly (no poisoning), mirroring
/// `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
