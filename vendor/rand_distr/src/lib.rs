//! Offline subset of `rand_distr`: the [`Normal`], [`StandardNormal`],
//! [`Uniform`] and [`Gamma`] distributions used by the FedADMM workspace.
//!
//! Sampling algorithms: Box–Muller for [`Normal`], the 256-layer ziggurat
//! for [`StandardNormal`] (the hot-path sampler — the common case is one
//! generator step with no transcendentals), and Marsaglia–Tsang for the
//! gamma distribution. Streams are deterministic under the seeded
//! generators from the vendored `rand` crate. [`Normal`] deliberately
//! keeps its original Box–Muller stream: synthetic dataset generation
//! draws from it, and changing that stream would invalidate every
//! golden-digest test downstream.

use rand::{Rng, RngCore};
use std::sync::OnceLock;

pub use rand::distributions::Distribution;

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Float scalar types usable by the distributions here.
pub trait Float: Copy + PartialOrd {
    /// Converts from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64`.
    fn to_f64(self) -> f64;
}

impl Float for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Float for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

/// The normal (Gaussian) distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal<F: Float> {
    mean: F,
    std: F,
}

impl<F: Float> Normal<F> {
    /// Creates a normal distribution.
    ///
    /// Fails if `std` is negative or non-finite.
    pub fn new(mean: F, std: F) -> Result<Self, ParamError> {
        let s = std.to_f64();
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError(
                "standard deviation must be finite and non-negative",
            ));
        }
        Ok(Normal { mean, std })
    }
}

/// Draws one standard-normal sample via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so that ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen_range(0.0f64..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.mean.to_f64() + self.std.to_f64() * standard_normal(rng))
    }
}

/// The standard normal distribution `N(0, 1)`, sampled with the
/// 256-layer ziggurat method (Marsaglia & Tsang, 2000).
///
/// In ~99 % of draws, sampling costs one raw `u64` from the generator, a
/// table lookup, a multiply and a compare — no `ln`/`sqrt`/`cos` — which
/// is why the differential-privacy noise pass uses this instead of
/// [`Normal`]'s Box–Muller. The rejection wedge and the tail fall back to
/// exact evaluation, so samples are exactly standard-normal, not an
/// approximation.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

/// Number of ziggurat layers.
const ZIG_LAYERS: usize = 256;
/// Right edge of the base layer (the tail starts here).
const ZIG_R: f64 = 3.654152885361989;
/// Common area of every layer (including the base strip + tail).
const ZIG_V: f64 = 0.004928673233992336;

struct ZigTables {
    /// Layer right edges: `x[0] > x[1] = ZIG_R > … > x[256] = 0`
    /// (`x[0]` is the virtual base edge `V / pdf(R)`).
    x: [f64; ZIG_LAYERS + 1],
    /// Unnormalized density `exp(-x[i]²/2)` at each edge.
    f: [f64; ZIG_LAYERS + 1],
}

/// Builds the edge tables once; the recurrence is the standard
/// equal-area construction `x[i] = pdf⁻¹(V / x[i-1] + pdf(x[i-1]))`.
#[inline]
fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |t: f64| (-0.5 * t * t).exp();
        let mut x = [0.0; ZIG_LAYERS + 1];
        x[0] = ZIG_V / pdf(ZIG_R);
        x[1] = ZIG_R;
        for i in 2..ZIG_LAYERS {
            x[i] = (-2.0 * (ZIG_V / x[i - 1] + pdf(x[i - 1])).ln()).sqrt();
        }
        x[ZIG_LAYERS] = 0.0;
        let mut f = [0.0; ZIG_LAYERS + 1];
        for i in 0..=ZIG_LAYERS {
            f[i] = pdf(x[i]);
        }
        ZigTables { x, f }
    })
}

/// One ziggurat draw. A raw `u64` supplies the layer index (8 bits), the
/// sign (1 bit) and a 53-bit uniform; most draws accept immediately on
/// the `x < x[i + 1]` test.
#[inline]
fn standard_normal_zig<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    const U53: f64 = 1.0 / (1u64 << 53) as f64;
    let t = zig_tables();
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        // The sign bit is applied by OR-ing it into the IEEE-754
        // representation of the (nonnegative) magnitude: a 50/50 branch
        // here would mispredict half the time on the hottest line.
        let sign_bit = (bits & 0x100) << 55;
        let u = (bits >> 11) as f64 * U53;
        let x = u * t.x[i];
        if x < t.x[i + 1] {
            return f64::from_bits(x.to_bits() | sign_bit);
        }
        if i == 0 {
            // Tail beyond R: Marsaglia's exponential-rejection method.
            loop {
                let u1: f64 = 1.0 - rng.gen_range(0.0f64..1.0);
                let u2: f64 = 1.0 - rng.gen_range(0.0f64..1.0);
                let xt = -u1.ln() / ZIG_R;
                let yt = -u2.ln();
                if 2.0 * yt > xt * xt {
                    return f64::from_bits((ZIG_R + xt).to_bits() | sign_bit);
                }
            }
        }
        // Wedge between the layer box and the density curve.
        let w: f64 = rng.gen_range(0.0f64..1.0);
        if t.f[i + 1] + w * (t.f[i] - t.f[i + 1]) < (-0.5 * x * x).exp() {
            return f64::from_bits(x.to_bits() | sign_bit);
        }
    }
}

impl<F: Float> Distribution<F> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(standard_normal_zig(rng))
    }
}

/// The continuous uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<F: Float> {
    low: F,
    high: F,
}

impl<F: Float> Uniform<F> {
    /// Creates a uniform distribution over `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low >= high` (matching `rand_distr::Uniform::new`'s
    /// behavior of rejecting empty ranges).
    pub fn new(low: F, high: F) -> Self {
        assert!(
            low.to_f64() < high.to_f64(),
            "Uniform::new: low must be < high"
        );
        Uniform { low, high }
    }
}

impl<F: Float> Distribution<F> for Uniform<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let (lo, hi) = (self.low.to_f64(), self.high.to_f64());
        let v = rng.gen_range(lo..hi);
        F::from_f64(v)
    }
}

/// The gamma distribution with shape `alpha` and scale `theta`.
#[derive(Debug, Clone, Copy)]
pub struct Gamma<F: Float> {
    shape: F,
    scale: F,
}

impl<F: Float> Gamma<F> {
    /// Creates a gamma distribution with the given shape and scale.
    ///
    /// Fails if either parameter is non-positive or non-finite.
    pub fn new(shape: F, scale: F) -> Result<Self, ParamError> {
        let (a, s) = (shape.to_f64(), scale.to_f64());
        if !a.is_finite() || a <= 0.0 {
            return Err(ParamError("gamma shape must be finite and positive"));
        }
        if !s.is_finite() || s <= 0.0 {
            return Err(ParamError("gamma scale must be finite and positive"));
        }
        Ok(Gamma { shape, scale })
    }
}

impl<F: Float> Distribution<F> for Gamma<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(sample_gamma(rng, self.shape.to_f64()) * self.scale.to_f64())
    }
}

/// Marsaglia–Tsang gamma sampler (with the α < 1 boost).
fn sample_gamma<R: RngCore + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    if alpha < 1.0 {
        // G(α) = G(α + 1) · U^{1/α}
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return sample_gamma(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let n = Normal::new(2.0f64, 3.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
        assert!(Normal::new(0.0f32, -1.0).is_err());
    }

    #[test]
    fn standard_normal_moments_tail_and_determinism() {
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..200_000)
            .map(|_| StandardNormal.sample(&mut rng))
            .collect();
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| x * x).sum::<f64>() / n - mean * mean;
        let skew = samples.iter().map(|x| x.powi(3)).sum::<f64>() / n;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.03, "third moment {skew}");
        // P(|Z| > 2) ≈ 4.55 % — the wedge and tail branches do fire.
        let beyond2 = samples.iter().filter(|x| x.abs() > 2.0).count() as f64 / n;
        assert!((beyond2 - 0.0455).abs() < 0.005, "P(|Z|>2) {beyond2}");
        assert!(
            samples.iter().any(|x| x.abs() > ZIG_R),
            "no sample from the tail branch in 200k draws"
        );
        // Same seed → identical stream.
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x: f64 = StandardNormal.sample(&mut a);
            let y: f64 = StandardNormal.sample(&mut b);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let u = Uniform::new(-1.0f32, 3.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let samples: Vec<f32> = (0..10_000).map(|_| u.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| (-1.0..3.0).contains(&x)));
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn gamma_moments() {
        // Gamma(k, θ): mean kθ, variance kθ².
        let g = Gamma::new(3.0f64, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 6.0).abs() < 0.2, "mean {mean}");
        assert!(samples.iter().all(|&x| x > 0.0));
        // Shape < 1 (the Dirichlet use case) still produces positive samples.
        let g = Gamma::new(0.3f64, 1.0).unwrap();
        for _ in 0..1000 {
            assert!(g.sample(&mut rng) > 0.0);
        }
        assert!(Gamma::new(0.0f64, 1.0).is_err());
    }
}
