//! Offline subset of `rand_distr`: the [`Normal`], [`Uniform`] and
//! [`Gamma`] distributions used by the FedADMM workspace.
//!
//! Sampling algorithms: Box–Muller for the normal distribution and
//! Marsaglia–Tsang for the gamma distribution. Streams are deterministic
//! under the seeded generators from the vendored `rand` crate.

use rand::{Rng, RngCore};

pub use rand::distributions::Distribution;

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Float scalar types usable by the distributions here.
pub trait Float: Copy + PartialOrd {
    /// Converts from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64`.
    fn to_f64(self) -> f64;
}

impl Float for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Float for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

/// The normal (Gaussian) distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal<F: Float> {
    mean: F,
    std: F,
}

impl<F: Float> Normal<F> {
    /// Creates a normal distribution.
    ///
    /// Fails if `std` is negative or non-finite.
    pub fn new(mean: F, std: F) -> Result<Self, ParamError> {
        let s = std.to_f64();
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError(
                "standard deviation must be finite and non-negative",
            ));
        }
        Ok(Normal { mean, std })
    }
}

/// Draws one standard-normal sample via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so that ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen_range(0.0f64..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.mean.to_f64() + self.std.to_f64() * standard_normal(rng))
    }
}

/// The continuous uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<F: Float> {
    low: F,
    high: F,
}

impl<F: Float> Uniform<F> {
    /// Creates a uniform distribution over `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low >= high` (matching `rand_distr::Uniform::new`'s
    /// behavior of rejecting empty ranges).
    pub fn new(low: F, high: F) -> Self {
        assert!(
            low.to_f64() < high.to_f64(),
            "Uniform::new: low must be < high"
        );
        Uniform { low, high }
    }
}

impl<F: Float> Distribution<F> for Uniform<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let (lo, hi) = (self.low.to_f64(), self.high.to_f64());
        let v = rng.gen_range(lo..hi);
        F::from_f64(v)
    }
}

/// The gamma distribution with shape `alpha` and scale `theta`.
#[derive(Debug, Clone, Copy)]
pub struct Gamma<F: Float> {
    shape: F,
    scale: F,
}

impl<F: Float> Gamma<F> {
    /// Creates a gamma distribution with the given shape and scale.
    ///
    /// Fails if either parameter is non-positive or non-finite.
    pub fn new(shape: F, scale: F) -> Result<Self, ParamError> {
        let (a, s) = (shape.to_f64(), scale.to_f64());
        if !a.is_finite() || a <= 0.0 {
            return Err(ParamError("gamma shape must be finite and positive"));
        }
        if !s.is_finite() || s <= 0.0 {
            return Err(ParamError("gamma scale must be finite and positive"));
        }
        Ok(Gamma { shape, scale })
    }
}

impl<F: Float> Distribution<F> for Gamma<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(sample_gamma(rng, self.shape.to_f64()) * self.scale.to_f64())
    }
}

/// Marsaglia–Tsang gamma sampler (with the α < 1 boost).
fn sample_gamma<R: RngCore + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    if alpha < 1.0 {
        // G(α) = G(α + 1) · U^{1/α}
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return sample_gamma(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let n = Normal::new(2.0f64, 3.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
        assert!(Normal::new(0.0f32, -1.0).is_err());
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let u = Uniform::new(-1.0f32, 3.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let samples: Vec<f32> = (0..10_000).map(|_| u.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| (-1.0..3.0).contains(&x)));
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn gamma_moments() {
        // Gamma(k, θ): mean kθ, variance kθ².
        let g = Gamma::new(3.0f64, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 6.0).abs() < 0.2, "mean {mean}");
        assert!(samples.iter().all(|&x| x > 0.0));
        // Shape < 1 (the Dirichlet use case) still produces positive samples.
        let g = Gamma::new(0.3f64, 1.0).unwrap();
        for _ in 0..1000 {
            assert!(g.sample(&mut rng) > 0.0);
        }
        assert!(Gamma::new(0.0f64, 1.0).is_err());
    }
}
