//! Wall-clock view of system heterogeneity: how much time FedADMM's
//! tolerance for variable local work saves on a heterogeneous device fleet.
//!
//! The paper measures communication *rounds*; this example uses the
//! `fedadmm-system` substrate to ask the complementary wall-clock question.
//! The same federated run is replayed under two protocols on a tiered device
//! fleet (edge gateways down to low-end phones):
//!
//! * **fixed work** — every selected client runs the full `E` epochs
//!   (FedAvg/SCAFFOLD in the paper's protocol), so the round waits for the
//!   slowest device doing the most work;
//! * **variable work** — each client runs `E_i ~ Uniform{1..E}` epochs
//!   (FedADMM/FedProx), so slow devices do proportionally less.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example wall_clock_stragglers
//! ```

use fedadmm::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let num_clients = 100;
    let clients_per_round = 10;
    let local_dataset_size = 600; // samples per client (MNIST / 100 clients)
    let max_epochs = 5;
    let model_dim = 1_663_370; // CNN 1 of Table II
    let rounds = 50;

    // A realistic mixed fleet: a few edge gateways, mostly mid-range phones,
    // and a tail of slow devices.
    let devices = DevicePopulation::tiered(
        num_clients,
        &[
            (DeviceClass::EdgeGateway, 0.05),
            (DeviceClass::HighEnd, 0.25),
            (DeviceClass::MidRange, 0.5),
            (DeviceClass::LowEnd, 0.2),
        ],
        42,
    );
    let (min, median, max) = devices.compute_spread();
    println!("fleet compute spread: min {min:.0}, median {median:.0}, max {max:.0} samples/s");
    let network = NetworkModel::default();

    let mut rng = SmallRng::seed_from_u64(7);
    let mut fixed_trace = WallClockTrace::new();
    let mut variable_trace = WallClockTrace::new();
    let mut deadline_trace = WallClockTrace::new();

    for _ in 0..rounds {
        // Select the round's clients (uniformly, like the paper).
        let mut ids: Vec<usize> = (0..num_clients).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        ids.truncate(clients_per_round);

        // Fixed work: everyone runs E epochs.
        let fixed_work: Vec<ClientRoundWork> = ids
            .iter()
            .map(|&c| ClientRoundWork {
                client_id: c,
                samples_processed: max_epochs * local_dataset_size,
                download_floats: model_dim,
                upload_floats: model_dim,
            })
            .collect();
        // Variable work: E_i ~ Uniform{1..E} (the paper's system-heterogeneity
        // protocol for FedADMM / FedProx).
        let variable_work: Vec<ClientRoundWork> = ids
            .iter()
            .map(|&c| ClientRoundWork {
                client_id: c,
                samples_processed: rng.gen_range(1..=max_epochs) * local_dataset_size,
                download_floats: model_dim,
                upload_floats: model_dim,
            })
            .collect();

        fixed_trace.push(&RoundTiming::compute(
            &fixed_work,
            &devices,
            &network,
            StragglerPolicy::WaitForAll,
        ));
        variable_trace.push(&RoundTiming::compute(
            &variable_work,
            &devices,
            &network,
            StragglerPolicy::WaitForAll,
        ));
        // A third protocol: fixed work but with a 30-second deadline that
        // drops stragglers (losing their updates).
        deadline_trace.push(&RoundTiming::compute(
            &fixed_work,
            &devices,
            &network,
            StragglerPolicy::Deadline { seconds: 30.0 },
        ));
    }

    println!("\nprotocol             | total time | mean round | upload (GB) | dropped updates");
    let report = |name: &str, trace: &WallClockTrace| {
        println!(
            "{:<20} | {:>9.1}s | {:>9.1}s | {:>11.2} | {:>15}",
            name,
            trace.total_seconds(),
            trace.total_seconds() / trace.len() as f64,
            trace.total_upload_bytes() as f64 / 1e9,
            trace.total_dropped()
        );
    };
    report("fixed E (FedAvg)", &fixed_trace);
    report("variable E (FedADMM)", &variable_trace);
    report("fixed E + deadline", &deadline_trace);

    println!(
        "\nVariable local work cuts the synchronous-round time by {:.0}% without dropping a \
         single update; the deadline protocol is faster still but discards {} client updates, \
         which costs statistical efficiency instead.",
        100.0 * (1.0 - variable_trace.total_seconds() / fixed_trace.total_seconds()),
        deadline_trace.total_dropped()
    );
}
