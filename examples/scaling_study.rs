//! Scaling study: how the FedADMM advantage changes with the client
//! population (the paper's Figures 3 and 4).
//!
//! The participation fraction is held at C = 0.1, so each round touches the
//! same *fraction* of the data regardless of the population; what changes
//! is the number of dual variables FedADMM maintains. The paper observes —
//! and this example reproduces in shape — that FedADMM's lead over the best
//! baseline grows as the system gets larger, especially under non-IID data.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use fedadmm::prelude::*;

fn rounds_to_target(
    algorithm: Box<dyn Algorithm>,
    num_clients: usize,
    seed: u64,
    target: f32,
) -> Option<usize> {
    let config = FedConfig {
        num_clients,
        participation: Participation::Fraction(0.1),
        local_epochs: 5,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 32,
            num_classes: 10,
        },
        seed,
        eval_subset: 400,
    };
    // The per-client volume is fixed (100 samples each), so larger
    // populations also mean more total data — exactly the paper's setup of
    // splitting a fixed dataset across more clients is approximated by
    // keeping per-round data constant via the fixed participation fraction.
    let (train, test) = SyntheticDataset::Fmnist.generate(num_clients * 100, 400, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, num_clients, seed);
    let mut sim = RoundEngine::new(config, train, test, partition, algorithm, SyncRounds)
        .expect("configuration is consistent");
    sim.run_until_accuracy(target, 30).expect("rounds run")
}

fn main() {
    let target = 0.55;
    println!(
        "non-IID synthetic FMNIST, target {:.0}% accuracy, C = 0.1, 30-round budget",
        target * 100.0
    );
    println!(
        "{:>10} {:>10} {:>10} {:>12}",
        "clients", "FedADMM", "FedAvg", "reduction"
    );
    for &clients in &[25usize, 50, 100] {
        let admm = rounds_to_target(
            Box::new(FedAdmm::new(0.3, ServerStepSize::Constant(1.0))),
            clients,
            3,
            target,
        );
        let avg = rounds_to_target(Box::new(FedAvg::new()), clients, 3, target);
        let reduction = match (admm, avg) {
            (Some(a), Some(b)) if b > 0 => format!("{:.0}%", 100.0 * (1.0 - a as f64 / b as f64)),
            _ => "-".to_string(),
        };
        let fmt = |r: Option<usize>| {
            r.map(|x| x.to_string())
                .unwrap_or_else(|| "30+".to_string())
        };
        println!(
            "{:>10} {:>10} {:>10} {:>12}",
            clients,
            fmt(admm),
            fmt(avg),
            reduction
        );
    }
    println!("\nThe reduction column mirrors the paper's Figure 4: the gap widens with scale.");
}
