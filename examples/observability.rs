//! Instrumenting a federated run with the telemetry subsystem.
//!
//! `fedadmm-telemetry` is a zero-dependency observability layer: a
//! structured span tracer, a metrics registry (counters, gauges,
//! histograms) and a `Telemetry` hook trait the `RoundEngine` drives at
//! fixed points of every round. The default `NoTelemetry` hook keeps the
//! engine's hot path free of clock reads; installing a `Recorder` turns
//! the same run into a span tree plus Prometheus-style metrics — without
//! changing a single bit of the training trajectory (see
//! `tests/engine_parity.rs`).
//!
//! This example runs FedADMM under the semi-asynchronous deadline
//! scheduler on a straggler fleet, with the opt-in optimality-gap gauge
//! enabled, then prints:
//!
//! * the headline counters (rounds, client updates, floats moved),
//! * latency histograms with bucket-interpolated quantiles,
//! * the staleness distribution the deadline regime produced,
//! * the first few spans of the trace (exportable as JSONL).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example observability
//! ```

use fedadmm::prelude::*;
use fedadmm::telemetry::names;
use fedadmm_core::engine::RoundEngine;

const NUM_CLIENTS: usize = 12;
const ROUNDS: usize = 12;
const SEED: u64 = 17;
const RHO: f32 = 0.3;

fn main() {
    let config = FedConfig {
        num_clients: NUM_CLIENTS,
        participation: Participation::Fraction(0.5),
        local_epochs: 2,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed: SEED,
        eval_subset: usize::MAX,
    };
    let (train, test) = SyntheticDataset::Mnist.generate(NUM_CLIENTS * 40, 200, SEED);
    let partition = DataDistribution::NonIidShards.partition(&train, NUM_CLIENTS, SEED);

    // A third of the fleet is 3× slower than the round deadline allows, so
    // its updates recur staleness-damped — exactly what the staleness
    // histogram and the per-round `staleness_mean`/`staleness_max` history
    // fields are there to expose.
    let fleet = SemiAsyncConfig::two_tier(NUM_CLIENTS, 1.0, 2.0 / 3.0, 3.0, 3.5)
        .with_staleness(StalenessWeight::Polynomial { exponent: 0.5 });

    let mut engine = RoundEngine::new(
        config,
        train,
        test,
        partition,
        FedAdmm::new(RHO, ServerStepSize::Constant(1.0)),
        SemiAsync::new(fleet),
    )
    .expect("engine builds")
    .with_telemetry(Box::new(Recorder::new()))
    .with_optimality_gap(RHO);

    engine.run_rounds(ROUNDS).expect("run succeeds");

    // Recover the recorder from the engine to export what it saw.
    let mut telemetry = engine.take_telemetry();
    let recorder = telemetry
        .as_any_mut()
        .and_then(|a| a.downcast_mut::<Recorder>())
        .expect("the installed hooks are a Recorder");

    println!("== counters ==");
    let m = recorder.metrics();
    for name in [
        names::ROUNDS_TOTAL,
        names::CLIENT_UPDATES_TOTAL,
        names::AGGREGATIONS_TOTAL,
        names::UPLOAD_FLOATS_TOTAL,
        names::BROADCAST_FLOATS_TOTAL,
        names::DROPPED_ARRIVALS_TOTAL,
    ] {
        println!("  {name:24} {}", m.counter_by_name(name).unwrap_or(0));
    }

    println!("\n== latency histograms (seconds) ==");
    for name in [
        names::ROUND_WALL_SECONDS,
        names::CLIENT_COMPUTE_SECONDS,
        names::AGGREGATE_SECONDS,
        names::EVAL_SECONDS,
    ] {
        let h = m.histogram_by_name(name).expect("registered by Recorder");
        println!(
            "  {name:24} n={:4}  mean={:.2e}  p50={:.2e}  p99={:.2e}  max={:.2e}",
            h.count(),
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.99),
            h.max()
        );
    }

    let staleness = m
        .histogram_by_name(names::STALENESS_ROUNDS)
        .expect("registered by Recorder");
    println!(
        "\n== staleness (rounds) ==\n  n={}  mean={:.2}  p90={:.1}  max={:.0}",
        staleness.count(),
        staleness.mean(),
        staleness.quantile(0.9),
        staleness.max()
    );
    println!(
        "  optimality gap V_t (last round): {:.4}",
        m.gauge_by_name("optimality_gap").unwrap_or(f64::NAN)
    );
    println!(
        "  test accuracy: {:.3}",
        m.gauge_by_name(names::TEST_ACCURACY).unwrap_or(f64::NAN)
    );

    // The trace is a span tree: scheduler ticks at the root, dispatch /
    // aggregate phases under them, per-client local updates as leaves.
    // `trace_json_lines()` exports the same records as JSONL for offline
    // analysis; here we pretty-print the first tick's subtree.
    println!("\n== first spans of the trace ==");
    let records = recorder.tracer().records();
    for span in records.iter().take(10) {
        let indent = if span.parent == 0 {
            ""
        } else if records
            .iter()
            .find(|s| s.id == span.parent)
            .is_some_and(|p| p.parent == 0)
        {
            "  "
        } else {
            "    "
        };
        let client = span
            .client
            .map(|c| format!(" client={c}"))
            .unwrap_or_default();
        println!(
            "  {indent}{:18} round={:?}{client} {:.3} ms",
            span.name,
            span.round,
            span.duration_ns() as f64 / 1e6
        );
    }
    println!("  … {} spans total", recorder.tracer().len());

    // The full registry exports as one JSON object through the vendored
    // serializer (the same shape `bench-snapshot` embeds per scenario).
    let json = recorder.metrics_json();
    println!(
        "\npeak RSS: {:.1} MiB",
        json["gauges"][names::PEAK_RSS_BYTES]
            .as_f64()
            .unwrap_or(0.0)
            / (1024.0 * 1024.0)
    );
}
