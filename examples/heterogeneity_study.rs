//! Heterogeneity study: the paper's central comparison on one machine.
//!
//! Reproduces the *shape* of Table III / Figure 5 at laptop scale: under
//! label-skewed (non-IID) client data and heterogeneous local work, FedADMM
//! reaches a target accuracy in fewer communication rounds than FedSGD,
//! FedAvg, FedProx and SCAFFOLD, while uploading no more per round than
//! FedAvg/FedProx (and half of SCAFFOLD).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example heterogeneity_study
//! ```

use fedadmm::prelude::*;

fn run_one(
    name: &str,
    algorithm: Box<dyn Algorithm>,
    distribution: DataDistribution,
    target: f32,
) -> (String, Option<usize>, usize, f32) {
    let config = FedConfig {
        num_clients: 100,
        participation: Participation::Fraction(0.1),
        local_epochs: 5,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 32,
            num_classes: 10,
        },
        seed: 7,
        eval_subset: usize::MAX,
    };
    let (train, test) = SyntheticDataset::Fmnist.generate(10_000, 400, config.seed);
    let partition = distribution.partition(&train, config.num_clients, config.seed);
    let mut sim = RoundEngine::new(config, train, test, partition, algorithm, SyncRounds)
        .expect("configuration is consistent");
    let rounds = sim.run_until_accuracy(target, 30).expect("rounds run");
    let history = sim.into_history();
    (
        name.to_string(),
        rounds,
        history.total_upload_floats(),
        history.best_accuracy(),
    )
}

fn main() {
    let target = 0.60;
    println!(
        "target accuracy: {:.0}%  (synthetic FMNIST stand-in, 100 clients, 10% participation)",
        target * 100.0
    );
    for distribution in [DataDistribution::Iid, DataDistribution::NonIidShards] {
        println!("\n=== {} data ===", distribution.label());
        println!(
            "{:<10} {:>16} {:>22} {:>10}",
            "method", "rounds to target", "uploaded floats", "best acc"
        );
        let suite: Vec<(&str, Box<dyn Algorithm>)> = vec![
            ("FedSGD", Box::new(FedSgd::new(0.1))),
            (
                "FedADMM",
                Box::new(FedAdmm::new(0.3, ServerStepSize::Constant(1.0))),
            ),
            ("FedAvg", Box::new(FedAvg::new())),
            ("FedProx", Box::new(FedProx::new(0.1))),
            ("SCAFFOLD", Box::new(Scaffold::new())),
        ];
        for (name, algorithm) in suite {
            let (name, rounds, upload, best) = run_one(name, algorithm, distribution, target);
            println!(
                "{:<10} {:>16} {:>22} {:>10.3}",
                name,
                rounds
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "30+".to_string()),
                upload,
                best
            );
        }
    }
    println!(
        "\nNote: SCAFFOLD uploads two vectors per selected client, which is why its\n\
         communication column is roughly double the others for the same round count."
    );
}
