//! Fused wire path vs wrapper-composed compression + privacy.
//!
//! The engine's wire path applies DP clipping + Gaussian noise and 8-bit
//! stochastic quantization *inside the dispatch workers* and folds the coded
//! cohort on the server in one fused dequantize-accumulate sweep — one
//! `"fuse_pass"` telemetry span per aggregation, never a decoded dense copy.
//! The classical alternative composes the [`PrivateAlgorithm`] and
//! [`QuantizedAlgorithm`] wrappers around FedADMM, which privatizes and
//! round-trips every upload through quantize → dequantize *before*
//! aggregation sees it — correct, but two extra dense passes per upload and
//! dense traffic on the wire.
//!
//! This example runs both on the same 10 000-client non-IID population and
//! prints rounds/sec, upload bytes and the span evidence that the fused
//! path really is single-pass.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example privacy_overhead
//! ```

use fedadmm::prelude::*;
use std::sync::Arc;
use std::time::Instant;

const NUM_CLIENTS: usize = 10_000;
const ROUNDS: usize = 5;
const CLIP_NORM: f32 = 20.0;
const NOISE_MULTIPLIER: f32 = 1e-3;
const BITS: u8 = 8;

fn config(seed: u64) -> FedConfig {
    FedConfig {
        num_clients: NUM_CLIENTS,
        participation: Participation::Count(200),
        local_epochs: 1,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    }
}

/// Wall seconds, final accuracy, dense upload bytes, true wire bytes and
/// the number of `"fuse_pass"` spans of one recorded run.
struct RunReport {
    wall: f64,
    accuracy: f32,
    upload_bytes: u64,
    wire_bytes: u64,
    fuse_passes: usize,
}

fn run<A: Algorithm>(algorithm: A, wire: WirePathConfig) -> RunReport {
    let seed = 77;
    let (train, test) = SyntheticDataset::Mnist.generate(2 * NUM_CLIENTS, 1_000, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, NUM_CLIENTS, seed);
    let mut engine = RoundEngine::new(config(seed), train, test, partition, algorithm, SyncRounds)
        .expect("configuration is consistent")
        .with_wire_path(wire)
        .eval_subset(0.25)
        .with_telemetry(Box::new(Recorder::new()));
    let start = Instant::now();
    engine.run_rounds(ROUNDS).expect("rounds succeed");
    let wall = start.elapsed().as_secs_f64();
    let accuracy = engine.history().final_accuracy();
    let telemetry = engine.take_telemetry();
    let rec = telemetry
        .as_any()
        .and_then(|a| a.downcast_ref::<Recorder>())
        .expect("telemetry is a Recorder");
    let counter = |name: &str| rec.metrics().counter_by_name(name).unwrap_or(0);
    RunReport {
        wall,
        accuracy,
        upload_bytes: counter("upload_floats_total") * 4,
        wire_bytes: counter("wire_bytes_total"),
        fuse_passes: rec
            .tracer()
            .records()
            .iter()
            .filter(|s| s.name == "fuse_pass")
            .count(),
    }
}

fn main() {
    println!(
        "{NUM_CLIENTS} clients, non-IID, {ROUNDS} rounds, DP (C = {CLIP_NORM}, σ = \
         {NOISE_MULTIPLIER}) + {BITS}-bit stochastic quantization\n"
    );

    // --- Fused: privatize + quantize in the dispatch workers, one fused
    // dequantize-accumulate sweep on the server. ------------------------
    let mechanism = GaussianMechanism::new(CLIP_NORM, NOISE_MULTIPLIER);
    let fused_wire =
        WirePathConfig::enabled(Quantizer::new(BITS, true)).with_guard(Arc::new(mechanism));
    let fused = run(FedAdmm::paper_default(), fused_wire);

    // --- Unfused reference: the same arithmetic via the wrapper stack —
    // DP first, then a quantize → dequantize round-trip, aggregation over
    // dense floats. ------------------------------------------------------
    let wrapped = QuantizedAlgorithm::new(
        PrivateAlgorithm::new(FedAdmm::paper_default(), mechanism),
        Quantizer::new(BITS, true),
    );
    let unfused = run(wrapped, WirePathConfig::disabled());

    let row = |label: &str, r: &RunReport| {
        println!(
            "{label:>8} | {:7.2} rounds/s | upload {:>10} B dense, {:>10} B on the wire | \
             accuracy {:.3} | fuse_pass spans: {}",
            ROUNDS as f64 / r.wall.max(1e-12),
            r.upload_bytes,
            r.wire_bytes,
            r.accuracy,
            r.fuse_passes,
        );
    };
    row("fused", &fused);
    row("unfused", &unfused);

    assert_eq!(
        fused.fuse_passes, ROUNDS,
        "the fused path folds each round's cohort in exactly one pass"
    );
    assert_eq!(
        unfused.fuse_passes, 0,
        "the wrapper stack never enters the fused fold"
    );
    let ratio = fused.upload_bytes as f64 / fused.wire_bytes.max(1) as f64;
    let speedup = (ROUNDS as f64 / fused.wall) / (ROUNDS as f64 / unfused.wall);
    println!(
        "\nfused path moved {ratio:.2}× fewer upload bytes and ran {speedup:.2}× the unfused \
         wrapper stack's round rate."
    );
}
