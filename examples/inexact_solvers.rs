//! FedADMM beyond fixed-epoch SGD: the inexactness criterion (6) and
//! alternative local solvers (gradient descent, L-BFGS).
//!
//! Algorithm 1 runs `E_i` epochs of SGD "for the sake of simplicity and
//! comparison with baseline methods", but the method only needs each client
//! to satisfy `‖∇L_i(w_i^{t+1})‖² ≤ ε_i` (equation 6), and Section III-A
//! explicitly mentions gradient descent and L-BFGS as alternative local
//! solvers. This example runs `FedAdmmInexact` with three different local
//! solvers and compares rounds-to-accuracy and local computation (counted in
//! full-gradient evaluations) against the standard SGD-based FedADMM.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example inexact_solvers
//! ```

use fedadmm::core::algorithms::FedAdmmInexact;
use fedadmm::prelude::*;

fn run<A: Algorithm>(algorithm: A, label: &str, seed: u64) {
    let config = FedConfig {
        num_clients: 30,
        participation: Participation::Fraction(0.2),
        local_epochs: 3,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    };
    let (train, test) = SyntheticDataset::Mnist.generate(3_000, 500, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, config.num_clients, seed);
    let mut sim = RoundEngine::new(config, train, test, partition, algorithm, SyncRounds)
        .expect("configuration is consistent");
    let rounds = sim.run_until_accuracy(0.7, 30).expect("run succeeds");
    let history = sim.history();
    println!(
        "{:<28} | {:>13} | {:>13.3} | {:>22}",
        label,
        rounds
            .map(|r| r.to_string())
            .unwrap_or_else(|| "30+".to_string()),
        history.best_accuracy(),
        history.total_local_epochs()
    );
}

fn main() {
    let rho = 0.3;
    println!("FedADMM local-solver comparison (non-IID, target 70% accuracy):\n");
    println!(
        "{:<28} | rounds to 70% | best accuracy | local work (epochs/evals)",
        "local solver"
    );

    // The paper's Algorithm 1: E_i epochs of mini-batch SGD.
    run(
        FedAdmm::new(rho, ServerStepSize::Constant(1.0)),
        "SGD epochs (Algorithm 1)",
        5,
    );

    // Full-batch gradient descent, fixed number of steps.
    run(
        FedAdmmInexact::new(
            rho,
            ServerStepSize::Constant(1.0),
            LocalSolver::GradientDescent {
                steps: 10,
                learning_rate: 0.5,
            },
        ),
        "gradient descent (10 steps)",
        5,
    );

    // Gradient descent run to the inexactness criterion (6).
    run(
        FedAdmmInexact::new(
            rho,
            ServerStepSize::Constant(1.0),
            LocalSolver::ToTolerance {
                epsilon: 0.05,
                learning_rate: 0.5,
                max_steps: 200,
            },
        ),
        "GD to ‖∇L‖² ≤ 0.05 (eq. 6)",
        5,
    );

    // L-BFGS — the quasi-Newton option the paper mentions.
    run(
        FedAdmmInexact::new(
            rho,
            ServerStepSize::Constant(1.0),
            LocalSolver::Lbfgs {
                memory: 10,
                max_iters: 25,
                epsilon: 0.05,
            },
        ),
        "L-BFGS (m = 10)",
        5,
    );

    println!(
        "\nAll four reach the target with the same upload cost per round (one d-vector per \
         selected client); they differ only in how each client spends its local compute budget — \
         exactly the system-heterogeneity flexibility the paper claims for criterion (6)."
    );
}
