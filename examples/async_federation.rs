//! Synchronous rounds versus semi-asynchronous deadlines versus fully
//! asynchronous aggregation on a straggler-heavy device fleet.
//!
//! The paper's related-work section argues that asynchronous ADMM's
//! bounded-delay assumption is unrealistic for federated fleets, and that
//! FedADMM's synchronous-but-partial-participation protocol sidesteps the
//! straggler problem instead. This example quantifies the trade-off on a
//! simulated two-tier fleet (30% of devices are 8× slower) by running the
//! same FedADMM configuration through all three schedulers of the unified
//! `RoundEngine`:
//!
//! * **`SyncRounds`** — every round waits for its slowest selected client;
//! * **`SemiAsync`** — rounds end at a fixed deadline; stragglers' updates
//!   arrive rounds later, staleness-damped, instead of stalling the server;
//! * **`BufferedAsync`** — updates are applied the moment they arrive,
//!   staleness-damped (the asynchronous extreme).
//!
//! Reported: test accuracy as a function of *virtual wall-clock time*.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example async_federation
//! ```

use fedadmm::prelude::*;
use fedadmm_core::engine::RoundEngine;

const NUM_CLIENTS: usize = 20;
const CONCURRENCY: usize = 4; // == clients per synchronous round (C = 0.2)
const SECONDS_PER_EPOCH: f64 = 1.0;
const SLOW_FRACTION: f64 = 0.3;
const SLOWDOWN: f64 = 8.0;
const SEED: u64 = 7;
const TOTAL_CLIENT_UPDATES: usize = 120;

fn config() -> FedConfig {
    FedConfig {
        num_clients: NUM_CLIENTS,
        participation: Participation::Count(CONCURRENCY),
        local_epochs: 2,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(20),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 32,
            num_classes: 10,
        },
        seed: SEED,
        eval_subset: 400,
    }
}

fn algorithm() -> FedAdmm {
    FedAdmm::new(0.3, ServerStepSize::Constant(1.0))
}

fn main() {
    let (train, test) = SyntheticDataset::Mnist.generate(2_000, 600, SEED);
    let partition = DataDistribution::NonIidShards.partition(&train, NUM_CLIENTS, SEED);

    // The shared straggler fleet: per-client seconds per local epoch.
    let pool = AsyncConfig::two_tier(
        NUM_CLIENTS,
        CONCURRENCY,
        SECONDS_PER_EPOCH,
        SLOW_FRACTION,
        SLOWDOWN,
        SEED,
    )
    .with_staleness(StalenessWeight::Polynomial { exponent: 0.5 });
    let seconds_per_epoch = pool.seconds_per_epoch.clone();

    // --- Fully asynchronous FedADMM -------------------------------------
    let mut async_engine = RoundEngine::new(
        config(),
        train.clone(),
        test.clone(),
        partition.clone(),
        algorithm(),
        BufferedAsync::new(pool),
    )
    .expect("async configuration is consistent");
    while async_engine.scheduler().updates_applied() < TOTAL_CLIENT_UPDATES {
        async_engine.step().expect("async step succeeds");
    }
    let (async_mean_staleness, async_max_staleness) = async_engine.staleness_stats();
    let (_, async_acc) = async_engine.evaluate_global().expect("evaluation succeeds");
    let async_time = async_engine.now();

    // --- Semi-asynchronous FedADMM --------------------------------------
    // Deadline set to the fast tier's round time (2 epochs × 1 s/epoch):
    // fast clients always make the deadline, the slow tier arrives rounds
    // late with staleness damping instead of stalling anyone.
    let fleet = SemiAsyncConfig {
        seconds_per_epoch: seconds_per_epoch.clone(),
        round_deadline: 2.0 * SECONDS_PER_EPOCH,
        staleness: StalenessWeight::Polynomial { exponent: 0.5 },
    };
    let mut semi_engine = RoundEngine::new(
        config(),
        train.clone(),
        test.clone(),
        partition.clone(),
        algorithm(),
        SemiAsync::new(fleet),
    )
    .expect("semi-async configuration is consistent");
    while semi_engine.events().len() < TOTAL_CLIENT_UPDATES {
        semi_engine.run_round().expect("semi-async round succeeds");
    }
    let (semi_mean_staleness, semi_max_staleness) = semi_engine.staleness_stats();
    let (_, semi_acc) = semi_engine.evaluate_global().expect("evaluation succeeds");
    let semi_time = semi_engine.now();

    // --- Synchronous FedADMM --------------------------------------------
    // A synchronous round costs as long as its *slowest* selected client
    // (epochs × that client's seconds per epoch). We run the same number of
    // client updates (120 / CONCURRENCY rounds) and accumulate that cost.
    let mut sync_engine =
        RoundEngine::new(config(), train, test, partition, algorithm(), SyncRounds)
            .expect("sync configuration is consistent");
    let rounds = TOTAL_CLIENT_UPDATES / CONCURRENCY;
    // A straggler estimate for the synchronous protocol: with 30% of the
    // fleet slowed down 8× and 4 clients drawn per round, most rounds include
    // at least one slow device, so we charge each round the 90th-percentile
    // device speed times the local epoch count.
    let mut speeds = seconds_per_epoch.clone();
    speeds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p90_idx = ((speeds.len() as f64 * 0.9) as usize).min(speeds.len() - 1);
    let p90 = speeds[p90_idx];
    let mut sync_time = 0.0f64;
    for _ in 0..rounds {
        let record = sync_engine.run_round().expect("round succeeds");
        let mean_epochs = record.total_local_epochs as f64 / record.num_selected.max(1) as f64;
        sync_time += p90 * mean_epochs;
    }
    let (_, sync_acc) = sync_engine.evaluate_global().expect("evaluation succeeds");

    println!(
        "Two-tier fleet: {NUM_CLIENTS} clients, {:.0}% of them {SLOWDOWN}× slower",
        SLOW_FRACTION * 100.0
    );
    println!("All protocols run {TOTAL_CLIENT_UPDATES} client updates of the same FedADMM.");
    println!();
    println!(
        "{:<28} | {:>15} | {:>13}",
        "protocol", "virtual seconds", "test accuracy"
    );
    println!("{}", "-".repeat(64));
    println!(
        "{:<28} | {:>15.1} | {:>13.3}",
        "synchronous (wait-for-all)", sync_time, sync_acc
    );
    println!(
        "{:<28} | {:>15.1} | {:>13.3}",
        "semi-async (deadline)", semi_time, semi_acc
    );
    println!(
        "{:<28} | {:>15.1} | {:>13.3}",
        "fully async (on-arrival)", async_time, async_acc
    );
    println!();
    println!(
        "semi-async staleness: mean {:.2}, max {} rounds ({} stragglers still in flight)",
        semi_mean_staleness,
        semi_max_staleness,
        semi_engine.scheduler().stragglers_in_flight(),
    );
    println!(
        "fully-async staleness: mean {:.2}, max {} versions (polynomial damping a = 0.5)",
        async_mean_staleness, async_max_staleness
    );
    println!();
    println!(
        "The synchronous server pays the straggler tax every round; the deadline scheduler \
         caps each round's cost at the deadline and folds late arrivals in (staleness-damped) \
         when they finally land; the fully asynchronous server never waits at all, so its \
         virtual time is set by device throughput rather than by the slowest selected device."
    );
}
