//! Synchronous rounds versus asynchronous, staleness-damped aggregation on
//! a straggler-heavy device fleet.
//!
//! The paper's related-work section argues that asynchronous ADMM's
//! bounded-delay assumption is unrealistic for federated fleets, and that
//! FedADMM's synchronous-but-partial-participation protocol sidesteps the
//! straggler problem instead. This example quantifies the trade-off on a
//! simulated two-tier fleet (30% of devices are 8× slower): it compares
//!
//! * synchronous FedADMM, where every round waits for its slowest selected
//!   client, against
//! * asynchronous FedADMM, where updates are applied on arrival with a
//!   polynomial staleness weight,
//!
//! and reports test accuracy as a function of *virtual wall-clock time*.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example async_federation
//! ```

use fedadmm::prelude::*;

const NUM_CLIENTS: usize = 20;
const CONCURRENCY: usize = 4; // == clients per synchronous round (C = 0.2)
const SECONDS_PER_EPOCH: f64 = 1.0;
const SLOW_FRACTION: f64 = 0.3;
const SLOWDOWN: f64 = 8.0;
const SEED: u64 = 7;

fn config() -> FedConfig {
    FedConfig {
        num_clients: NUM_CLIENTS,
        participation: Participation::Count(CONCURRENCY),
        local_epochs: 2,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(20),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp { input_dim: 784, hidden_dim: 32, num_classes: 10 },
        seed: SEED,
        eval_subset: 400,
    }
}

fn main() {
    let (train, test) = SyntheticDataset::Mnist.generate(2_000, 600, SEED);
    let partition = DataDistribution::NonIidShards.partition(&train, NUM_CLIENTS, SEED);

    // The shared straggler fleet: per-client seconds per local epoch.
    let pool = AsyncConfig::two_tier(
        NUM_CLIENTS,
        CONCURRENCY,
        SECONDS_PER_EPOCH,
        SLOW_FRACTION,
        SLOWDOWN,
        SEED,
    )
    .with_staleness(StalenessWeight::Polynomial { exponent: 0.5 });
    let seconds_per_epoch = pool.seconds_per_epoch.clone();

    // --- Asynchronous FedADMM -------------------------------------------
    let mut async_sim = AsyncSimulation::new(
        config(),
        pool,
        train.clone(),
        test.clone(),
        partition.clone(),
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
    )
    .expect("async configuration is consistent");
    async_sim.run_updates(120).expect("async run succeeds");
    let (mean_staleness, max_staleness) = async_sim.staleness_stats();
    let (_, async_acc) = async_sim.evaluate_global().expect("evaluation succeeds");
    let async_time = async_sim.now();

    // --- Synchronous FedADMM --------------------------------------------
    // A synchronous round costs as long as its *slowest* selected client
    // (epochs × that client's seconds per epoch). We run the same number of
    // client updates (120 / CONCURRENCY rounds) and accumulate that cost.
    let mut sync_sim = Simulation::new(
        config(),
        train,
        test,
        partition,
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
    )
    .expect("sync configuration is consistent");
    let rounds = 120 / CONCURRENCY;
    // A straggler estimate for the synchronous protocol: with 30% of the
    // fleet slowed down 8× and 4 clients drawn per round, most rounds include
    // at least one slow device, so we charge each round the 90th-percentile
    // device speed times the local epoch count.
    let mut speeds = seconds_per_epoch.clone();
    speeds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p90_idx = ((speeds.len() as f64 * 0.9) as usize).min(speeds.len() - 1);
    let p90 = speeds[p90_idx];
    let mut sync_time = 0.0f64;
    for _ in 0..rounds {
        let record = sync_sim.run_round().expect("round succeeds");
        let mean_epochs = record.total_local_epochs as f64 / record.num_selected.max(1) as f64;
        sync_time += p90 * mean_epochs;
    }
    let (_, sync_acc) = sync_sim.evaluate_global().expect("evaluation succeeds");

    println!(
        "Two-tier fleet: {NUM_CLIENTS} clients, {:.0}% of them {SLOWDOWN}× slower",
        SLOW_FRACTION * 100.0
    );
    println!();
    println!("{:<28} | {:>14} | {:>13}", "protocol", "virtual seconds", "test accuracy");
    println!("{}", "-".repeat(62));
    println!("{:<28} | {:>14.1} | {:>13.3}", "synchronous FedADMM", sync_time, sync_acc);
    println!("{:<28} | {:>14.1} | {:>13.3}", "asynchronous FedADMM", async_time, async_acc);
    println!();
    println!(
        "async staleness: mean {:.2}, max {} (polynomial damping a = 0.5)",
        mean_staleness, max_staleness
    );
    println!(
        "Both protocols applied 120 client updates; the asynchronous server never waits for \
         stragglers, so its virtual time is set by device throughput rather than by the slowest \
         selected device."
    );
}
