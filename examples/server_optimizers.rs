//! Server-side update rules compared: FedAvg, FedAvgM, FedAdam, FedDyn and
//! FedADMM on the same non-IID federated problem.
//!
//! The paper generalises FedAvg's server update with the gathering step size
//! η (equation 5) and attributes most of FedADMM's speedup to the *client*
//! side (dual variables). A natural question is how much a smarter *server*
//! rule alone can recover: this example runs the FedOpt family (server
//! momentum / Adam), the closely related FedDyn, and FedADMM under identical
//! settings and reports rounds-to-target-accuracy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example server_optimizers
//! ```

use fedadmm::prelude::*;

const TARGET_ACCURACY: f32 = 0.60;
const MAX_ROUNDS: usize = 60;

fn run(name: &str, algorithm: Box<dyn Algorithm>, seed: u64) -> (String, Option<usize>, f32) {
    let config = FedConfig {
        num_clients: 50,
        participation: Participation::Fraction(0.2),
        local_epochs: 3,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(20),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 32,
            num_classes: 10,
        },
        seed,
        eval_subset: 400,
    };
    let (train, test) = SyntheticDataset::Mnist.generate(4_000, 600, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, config.num_clients, seed);
    let mut sim = RoundEngine::new(config, train, test, partition, algorithm, SyncRounds)
        .expect("configuration is consistent");
    let rounds = sim
        .run_until_accuracy(TARGET_ACCURACY, MAX_ROUNDS)
        .expect("run succeeds");
    (name.to_string(), rounds, sim.history().best_accuracy())
}

fn main() {
    let seed = 2024;
    let candidates: Vec<(&str, Box<dyn Algorithm>)> = vec![
        ("FedAvg", Box::new(FedAvg::new())),
        ("FedAvgM (server momentum)", Box::new(FedOpt::avgm())),
        ("FedAdam (adaptive server)", Box::new(FedOpt::adam())),
        ("FedYogi (adaptive server)", Box::new(FedOpt::yogi())),
        ("FedDyn  (dynamic regularizer)", Box::new(FedDyn::new(0.3))),
        (
            "FedADMM (dual variables)",
            Box::new(FedAdmm::new(0.3, ServerStepSize::Constant(1.0))),
        ),
    ];

    println!(
        "Non-IID MNIST-like problem, 50 clients, C = 0.2, E = 3 — rounds to {:.0}% accuracy (cap {MAX_ROUNDS})",
        TARGET_ACCURACY * 100.0
    );
    println!(
        "{:<32} | {:>10} | {:>13}",
        "algorithm", "rounds", "best accuracy"
    );
    println!("{}", "-".repeat(62));
    let mut results = Vec::new();
    for (name, algorithm) in candidates {
        let (name, rounds, best) = run(name, algorithm, seed);
        let rounds_str = rounds
            .map(|r| r.to_string())
            .unwrap_or_else(|| format!("{MAX_ROUNDS}+"));
        println!("{name:<32} | {rounds_str:>10} | {best:>12.3}");
        results.push((name, rounds, best));
    }

    // Summarise the comparison the way the paper's Table III does: the
    // reduction of FedADMM over the best-performing baseline.
    let admm = results
        .iter()
        .find(|(n, _, _)| n.starts_with("FedADMM"))
        .and_then(|(_, r, _)| *r);
    let best_baseline = results
        .iter()
        .filter(|(n, _, _)| !n.starts_with("FedADMM"))
        .filter_map(|(_, r, _)| *r)
        .min();
    match (admm, best_baseline) {
        (Some(a), Some(b)) if a < b => {
            println!(
                "\nFedADMM reaches the target in {a} rounds vs {b} for the best baseline \
                 ({:.0}% fewer rounds).",
                100.0 * (1.0 - a as f64 / b as f64)
            );
        }
        (Some(a), Some(b)) => {
            println!("\nFedADMM needed {a} rounds; best baseline needed {b}.");
        }
        _ => println!("\nNot every method reached the target within {MAX_ROUNDS} rounds."),
    }
}
