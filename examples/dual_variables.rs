//! Watch FedADMM's dual variables adapt to data heterogeneity.
//!
//! Section III-A interprets the dual variable `y_i` as a signed "price
//! vector" that records how much client `i`'s data pulls it away from the
//! global model. This example runs the same FedADMM configuration on an IID
//! and a non-IID partition of the same synthetic dataset and prints the
//! drift / dual-norm statistics of [`DriftReport`] side by side: under the
//! non-IID partition the dual variables grow substantially larger — they are
//! doing the adaptation work that would otherwise require tuning ρ.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dual_variables
//! ```

use fedadmm::prelude::*;

fn run(distribution: DataDistribution, seed: u64) -> Vec<(usize, f32, DriftReport)> {
    let config = FedConfig {
        num_clients: 50,
        participation: Participation::Fraction(0.2),
        local_epochs: 3,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 32,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    };
    let (train, test) = SyntheticDataset::Mnist.generate(5_000, 500, seed);
    let partition = distribution.partition(&train, config.num_clients, seed);
    let mut sim = RoundEngine::new(
        config,
        train,
        test,
        partition,
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
        SyncRounds,
    )
    .expect("configuration is consistent");

    let mut snapshots = Vec::new();
    for round in 1..=20 {
        let record = sim.run_round().expect("round succeeds");
        if round % 5 == 0 {
            let report = DriftReport::compute(sim.clients(), sim.global_model());
            snapshots.push((round, record.test_accuracy, report));
        }
    }
    snapshots
}

fn main() {
    println!("=== FedADMM dual variables under IID vs non-IID data ===\n");
    let iid = run(DataDistribution::Iid, 7);
    let non_iid = run(DataDistribution::NonIidShards, 7);

    println!(
        "{:>5} | {:>9} | {:>12} | {:>12} | {:>10}",
        "round", "setting", "accuracy", "mean ‖y_i‖", "mean drift"
    );
    for ((round, acc, rep), (_, acc_n, rep_n)) in iid.iter().zip(non_iid.iter()) {
        println!(
            "{:>5} | {:>9} | {:>12.3} | {:>12.4} | {:>10.4}",
            round, "IID", acc, rep.mean_dual_norm, rep.mean_model_drift
        );
        println!(
            "{:>5} | {:>9} | {:>12.3} | {:>12.4} | {:>10.4}",
            round, "non-IID", acc_n, rep_n.mean_dual_norm, rep_n.mean_model_drift
        );
    }

    let last_iid = &iid.last().unwrap().2;
    let last_non_iid = &non_iid.last().unwrap().2;
    println!("\nfinal IID     state: {}", last_iid.summary());
    println!("final non-IID state: {}", last_non_iid.summary());
    println!(
        "\nThe dual variables are the per-client running record of disagreement with the global \
         model (the \"price vectors\" of Section III-A): they grow while a client's data pulls it \
         away from consensus and they enter every subsequent local objective, which is what lets \
         the same fixed ρ = 0.3 work unchanged in both the IID and the non-IID setting. The KKT \
         residual ‖Σ_i y_i‖ ({:.1} IID vs {:.1} non-IID here) shrinks towards 0 as the runs \
         approach a stationary point of the consensus problem (2).",
        last_iid.dual_sum_norm, last_non_iid.dual_sum_norm
    );
}
