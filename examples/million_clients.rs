//! Million-client rounds on a laptop: the sharded, spill-to-disk client
//! state store.
//!
//! FedADMM keeps per-client state (the local model `w_i` and the dual
//! variable `y_i`) between rounds, so a naive simulation allocates
//! `m × 3 × d` floats up front — ~94 GB for a million clients of a
//! 7 850-parameter model. But with `C = 0.1%` participation only ~1 000
//! clients are ever *active* per round. This example runs exactly that
//! population on [`StoreConfig::Spill`]: untouched clients stay implicit
//! (a shard materializes lazily on first selection), and trained shards
//! are evicted to disk under an LRU policy whenever resident state
//! exceeds a fixed byte budget. Aggregation runs hierarchically — one
//! partial fold per shard, combined tree-style — so the server never
//! walks a million-entry array either.
//!
//! Reported per round: rounds/sec, resident store bytes versus the dense
//! footprint, and the store's materialize / spill / reload counters.
//!
//! Run with (about a minute; use `--release`, the debug build is far
//! slower):
//!
//! ```text
//! cargo run --release --example million_clients
//! ```
//!
//! Population, participation and budget are compile-time constants below —
//! shrink `NUM_CLIENTS` for a quick look, or grow the budget to watch the
//! spill traffic disappear.

use fedadmm::prelude::*;
use fedadmm::telemetry::peak_rss_bytes;
use fedadmm_core::engine::RoundEngine;
use fedadmm_data::partition::Partition;
use fedadmm_data::Dataset;

const NUM_CLIENTS: usize = 1_000_000;
const COHORT: usize = 1_000; // C = 0.1%
const SAMPLES_PER_CLIENT: usize = 20;
const NUM_SHARDS: usize = 512;
const BUDGET_BYTES: u64 = 64 * 1024 * 1024;
const ROUNDS: usize = 5;
const SEED: u64 = 42;

/// Label-sorted shared-index partition: client `c` owns a window of the
/// label-ordered sample list, so every client is non-IID (few labels)
/// while the dataset itself stays small and shared.
fn shared_non_iid_partition(train: &Dataset) -> Partition {
    let mut order: Vec<usize> = (0..train.len()).collect();
    order.sort_by_key(|&i| train.label(i));
    let span = train.len() - SAMPLES_PER_CLIENT;
    Partition::new(
        (0..NUM_CLIENTS)
            .map(|c| {
                let start = (c * 17) % span;
                order[start..start + SAMPLES_PER_CLIENT].to_vec()
            })
            .collect(),
    )
}

fn main() {
    let config = FedConfig {
        num_clients: NUM_CLIENTS,
        participation: Participation::Count(COHORT),
        local_epochs: 1,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(20),
        local_learning_rate: 0.05,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed: SEED,
        eval_subset: usize::MAX,
    };
    let dense_bytes = NUM_CLIENTS as u64 * 3 * config.model.num_params() as u64 * 4;
    println!(
        "population {NUM_CLIENTS}, cohort {COHORT}/round, state budget {} MB",
        BUDGET_BYTES / (1024 * 1024)
    );
    println!(
        "a dense Vec<ClientState> would need ~{} GB; the spill store holds {NUM_SHARDS} shards",
        dense_bytes / (1024 * 1024 * 1024)
    );

    let (train, test) = SyntheticDataset::Mnist.generate(2_000, 400, SEED);
    let partition = shared_non_iid_partition(&train);
    let store = StoreConfig::Spill {
        num_shards: NUM_SHARDS,
        budget_bytes: BUDGET_BYTES,
        dir: None, // a fresh temp dir, cleaned up on drop
    };
    let mut engine = RoundEngine::new_with_store(
        config,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SyncRounds,
        &store,
    )
    .expect("valid configuration")
    .with_aggregation(AggregationMode::Hierarchical)
    .eval_subset(0.25);

    println!(
        "\n{:>5} {:>9} {:>10} {:>12} {:>8} {:>8} {:>8}",
        "round", "acc", "rounds/s", "resident", "mat", "spill", "reload"
    );
    for round in 0..ROUNDS {
        let start = std::time::Instant::now();
        let record = engine.run_round().expect("round succeeds");
        let secs = start.elapsed().as_secs_f64();
        let stats = engine.store().stats();
        println!(
            "{round:>5} {:>8.1}% {:>10.2} {:>9} MB {:>8} {:>8} {:>8}",
            record.test_accuracy * 100.0,
            1.0 / secs.max(1e-12),
            engine.store().resident_bytes() / (1024 * 1024),
            stats.materializations,
            stats.spill_writes,
            stats.spill_loads,
        );
    }

    if let Some(peak) = peak_rss_bytes() {
        println!(
            "\npeak RSS {} MB — {:.1}% of the dense footprint",
            peak / (1024 * 1024),
            peak as f64 / dense_bytes as f64 * 100.0
        );
    }
}
