//! Imbalanced data volumes: the paper's Table VI / Figure 10 scenario.
//!
//! Clients hold wildly different amounts of data (the label-sorted training
//! set is cut into shards and clients receive a number of shards equal to
//! their group index). This example builds that partition, prints its
//! statistics (the analogue of Table VI), and compares FedADMM against
//! FedAvg and SCAFFOLD within a fixed round budget (the analogue of
//! Figure 10).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example imbalanced_volumes
//! ```

use fedadmm::prelude::*;

fn main() {
    let num_clients = 40;
    let num_groups = 20;
    let seed = 11;

    let (train, test) = SyntheticDataset::Fmnist.generate(6_000, 400, seed);
    let distribution = DataDistribution::ImbalancedGroups {
        num_groups,
        num_shards: 1_200,
    };
    let partition = distribution.partition(&train, num_clients, seed);

    // Table VI analogue: mean / stdev of the per-client sample counts.
    let (mean, stdev) = partition.size_stats();
    let sizes = partition.sizes();
    println!("imbalanced partition over {num_clients} clients ({num_groups} groups):");
    println!(
        "  samples assigned: {}   mean {:.1}   stdev {:.1}   min {}   max {}",
        partition.total_samples(),
        mean,
        stdev,
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap()
    );

    let config = FedConfig {
        num_clients,
        participation: Participation::Fraction(0.1),
        local_epochs: 5,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 32,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    };

    println!(
        "\n{:<10} {:>20} {:>12}",
        "method", "best acc (25 rounds)", "upload (f32)"
    );
    let suite: Vec<(&str, Box<dyn Algorithm>)> = vec![
        (
            "FedADMM",
            Box::new(FedAdmm::new(0.3, ServerStepSize::Constant(1.0))),
        ),
        ("FedAvg", Box::new(FedAvg::new())),
        ("SCAFFOLD", Box::new(Scaffold::new())),
    ];
    for (name, algorithm) in suite {
        let partition = distribution.partition(&train, num_clients, seed);
        let mut sim = RoundEngine::new(
            config,
            train.clone(),
            test.clone(),
            partition,
            algorithm,
            SyncRounds,
        )
        .expect("configuration is consistent");
        sim.run_rounds(25).expect("rounds run");
        let history = sim.into_history();
        println!(
            "{:<10} {:>20.3} {:>12}",
            name,
            history.best_accuracy(),
            history.total_upload_floats()
        );
    }
    println!(
        "\nFedADMM's dual variables absorb the volume imbalance; SCAFFOLD pays twice the upload."
    );
}
