//! Quickstart: train a federated model with FedADMM on a non-IID synthetic
//! MNIST-like dataset and watch the per-round test accuracy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fedadmm::prelude::*;

fn main() {
    // 1. A federated configuration in the spirit of the paper's MNIST /
    //    100-client setting, shrunk so the example finishes in seconds:
    //    10% of clients participate per round, up to E = 5 local epochs with
    //    system heterogeneity (each client draws its epoch count uniformly
    //    from {1..E}), and SGD with learning rate 0.1 as the local solver.
    let config = FedConfig {
        num_clients: 100,
        participation: Participation::Fraction(0.1),
        local_epochs: 5,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 32,
            num_classes: 10,
        },
        seed: 42,
        eval_subset: usize::MAX,
    };

    // 2. Synthetic MNIST-like data (the offline stand-in for the real
    //    dataset; see DESIGN.md), partitioned the paper's non-IID way:
    //    sorted by label, two shards per client.
    let (train, test) = SyntheticDataset::Mnist.generate(10_000, 500, config.seed);
    let partition =
        DataDistribution::NonIidShards.partition(&train, config.num_clients, config.seed);
    println!(
        "non-IID partition: {:.1} distinct labels per client on average",
        partition.mean_distinct_labels(&train)
    );

    // 3. FedADMM (Algorithm 1): server step η = 1, warm-started local
    //    training, dual variables stored at the clients. ρ = 0.3 is the fixed
    //    substrate-calibrated constant (the paper uses 0.01 for its
    //    CNN/real-image gradient scale; see DESIGN.md) and is used unchanged
    //    across every example and experiment in this repository.
    let algorithm = FedAdmm::new(0.3, ServerStepSize::Constant(1.0));
    let mut sim = RoundEngine::new(config, train, test, partition, algorithm, SyncRounds)
        .expect("configuration is consistent");

    // 4. Run 30 communication rounds and report progress.
    println!("round | test accuracy | test loss | cumulative upload (floats)");
    for _ in 0..30 {
        let record = sim.run_round().expect("round succeeds");
        println!(
            "{:5} | {:13.3} | {:9.3} | {}",
            record.round + 1,
            record.test_accuracy,
            record.test_loss,
            record.cumulative_upload_floats
        );
    }

    let history = sim.history();
    println!(
        "\nbest accuracy {:.3}; rounds to 80%: {}",
        history.best_accuracy(),
        history
            .rounds_to_accuracy(0.8)
            .map(|r| r.to_string())
            .unwrap_or_else(|| "not reached".to_string())
    );
}
