//! Extending the framework with a user-defined algorithm.
//!
//! The `Algorithm` trait is the extension point of `fedadmm-core`: anything
//! that can produce a client message and aggregate a round's messages plugs
//! into the same simulation engine, selectors, heterogeneity models and
//! metrics as the built-in methods. This example implements **FedAvgM**
//! (FedAvg with server momentum, Hsu et al. 2019) in ~60 lines and races it
//! against plain FedAvg and FedADMM on a non-IID partition.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_algorithm
//! ```

use fedadmm::core::algorithms::{Algorithm, ClientMessage, ServerOutcome};
use fedadmm::core::client::ClientState;
use fedadmm::core::trainer::{local_sgd, LocalEnv};
use fedadmm::prelude::*;
use fedadmm::tensor::TensorResult;

/// FedAvg with heavy-ball momentum applied to the server update.
struct FedAvgM {
    /// Momentum coefficient β (0 recovers FedAvg).
    beta: f32,
    /// Server learning rate applied to the averaged pseudo-gradient.
    server_lr: f32,
    velocity: Option<ParamVector>,
}

impl FedAvgM {
    fn new(beta: f32, server_lr: f32) -> Self {
        assert!((0.0..1.0).contains(&beta));
        FedAvgM {
            beta,
            server_lr,
            velocity: None,
        }
    }
}

impl Algorithm for FedAvgM {
    fn name(&self) -> &'static str {
        "FedAvgM"
    }

    fn init(&mut self, dim: usize, _num_clients: usize) {
        self.velocity = Some(ParamVector::zeros(dim));
    }

    fn supports_variable_work(&self) -> bool {
        false // like FedAvg, clients run the full E epochs
    }

    fn client_update(
        &self,
        client: &mut ClientState,
        global: &ParamVector,
        env: &LocalEnv<'_>,
    ) -> TensorResult<ClientMessage> {
        // Same local problem as FedAvg; upload the model *difference* so the
        // server can treat it as a pseudo-gradient.
        let result = local_sgd(env, global.as_slice(), |_, _| {})?;
        client.times_selected += 1;
        let delta = ParamVector::from_vec(result.params).sub(global);
        Ok(ClientMessage {
            client_id: client.id,
            num_samples: client.num_samples(),
            payload: vec![delta],
            epochs_run: env.epochs,
            samples_processed: result.samples_processed,
            wire: None,
        })
    }

    fn server_update(
        &mut self,
        global: &mut ParamVector,
        messages: &[ClientMessage],
        _num_clients: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> ServerOutcome {
        if messages.is_empty() {
            return ServerOutcome { upload_floats: 0 };
        }
        // Average pseudo-gradient, then heavy-ball velocity update.
        let mut mean = ParamVector::zeros(global.len());
        for msg in messages {
            mean.axpy(1.0 / messages.len() as f32, &msg.payload[0]);
        }
        let velocity = self
            .velocity
            .as_mut()
            .expect("init() is called before the first round");
        velocity.scale(self.beta);
        velocity.axpy(1.0, &mean);
        global.axpy(self.server_lr, velocity);
        ServerOutcome {
            upload_floats: messages.iter().map(|m| m.upload_floats()).sum(),
        }
    }
}

fn race<A: Algorithm>(algorithm: A, seed: u64) -> (String, Option<usize>, f32) {
    let config = FedConfig {
        num_clients: 50,
        participation: Participation::Fraction(0.2),
        local_epochs: 3,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 32,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    };
    let name = algorithm.name().to_string();
    let (train, test) = SyntheticDataset::Mnist.generate(5_000, 500, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, config.num_clients, seed);
    let mut sim = RoundEngine::new(config, train, test, partition, algorithm, SyncRounds)
        .expect("configuration is consistent");
    let target = 0.75;
    let rounds = sim.run_until_accuracy(target, 40).expect("run succeeds");
    (name, rounds, sim.history().best_accuracy())
}

fn main() {
    println!(
        "Racing a user-defined algorithm (FedAvgM) against the built-ins (non-IID, target 75%):\n"
    );
    println!("{:<10} | rounds to 75% | best accuracy", "algorithm");
    for (name, rounds, best) in [
        race(FedAvg::new(), 3),
        race(FedAvgM::new(0.9, 1.0), 3),
        race(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), 3),
    ] {
        println!(
            "{:<10} | {:>13} | {:>12.3}",
            name,
            rounds
                .map(|r| r.to_string())
                .unwrap_or_else(|| "40+".to_string()),
            best
        );
    }
    println!(
        "\nThe custom algorithm used the same Simulation, selectors, metrics and data \
         partitioners as the built-ins — only the Algorithm trait impl is new."
    );
}
