//! Privacy-preserving FedADMM: update clipping, Gaussian noise, secure
//! aggregation, and a zCDP privacy accountant.
//!
//! The paper notes (footnote 1) that standard privacy-preserving methods
//! compose with FedADMM. This example demonstrates both ingredients on a
//! non-IID run:
//!
//! 1. each client's upload is clipped and noised by [`GaussianMechanism`]
//!    (via the [`PrivateAlgorithm`] wrapper), and the cumulative (ε, δ)
//!    guarantee is tracked by [`PrivacyAccountant`];
//! 2. the uploads of one round are additionally passed through the
//!    pairwise-mask [`SecureAggregator`], showing that the server learns
//!    only the sum it needs for equation (5), bit-for-bit.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example privacy_preserving
//! ```

use fedadmm::prelude::*;

fn main() {
    let config = FedConfig {
        num_clients: 50,
        participation: Participation::Fraction(0.2),
        local_epochs: 3,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 32,
            num_classes: 10,
        },
        seed: 13,
        eval_subset: usize::MAX,
    };
    let (train, test) = SyntheticDataset::Mnist.generate(5_000, 500, config.seed);
    let partition =
        DataDistribution::NonIidShards.partition(&train, config.num_clients, config.seed);

    // --- 1. Differentially private FedADMM -------------------------------
    let mechanism = GaussianMechanism::new(20.0, 2e-3);
    let algorithm =
        PrivateAlgorithm::new(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), mechanism);
    let mut accountant = PrivacyAccountant::new(
        mechanism.noise_multiplier as f64,
        config.clients_per_round() as f64 / config.num_clients as f64,
        1e-5,
    );
    let mut sim = RoundEngine::new(config, train, test, partition, algorithm, SyncRounds)
        .expect("configuration is consistent");

    println!("round | accuracy | ε spent (δ = 1e-5)");
    for round in 1..=30 {
        let record = sim.run_round().expect("round succeeds");
        accountant.step(1);
        if round % 5 == 0 {
            println!(
                "{:5} | {:8.3} | {:7.3}",
                round,
                record.test_accuracy,
                accountant.spent().epsilon
            );
        }
    }
    println!(
        "\nbest accuracy {:.3} under clipping C = {} and noise multiplier σ = {}.",
        sim.history().best_accuracy(),
        mechanism.clip_norm,
        mechanism.noise_multiplier,
    );
    println!(
        "At this toy scale (50 clients, σ = {}) the formal guarantee is weak — ε grows fast \
         because the per-round zCDP cost is q²/(2σ²). The accountant is most useful for planning \
         production-scale deployments: with m = 10,000 clients, q = 0.01 and σ = 1.0, a \
         1,000-round run costs ε = {:.2} at δ = 1e-5.",
        mechanism.noise_multiplier,
        PrivacyAccountant::new(1.0, 0.01, 1e-5)
            .forecast(1000)
            .epsilon
    );

    // --- 2. Secure aggregation of one round's uploads --------------------
    // Simulate five clients' update vectors and aggregate them under
    // pairwise masking; the server's sum matches the plain sum exactly even
    // though each individual masked upload is unintelligible.
    let participants = [3usize, 11, 19, 27, 42];
    let dim = 256;
    let aggregator = SecureAggregator::new(0xFEED_5EED, &participants, dim);
    let updates: Vec<(usize, Vec<f32>)> = participants
        .iter()
        .map(|&c| {
            (
                c,
                (0..dim)
                    .map(|j| ((c + j) as f32 * 0.01).sin() * 0.05)
                    .collect(),
            )
        })
        .collect();
    let masked_sum = aggregator.masked_sum(&updates);
    let plain_sum: Vec<f32> = (0..dim)
        .map(|j| updates.iter().map(|(_, u)| u[j]).sum())
        .collect();
    let max_err = masked_sum
        .iter()
        .zip(plain_sum.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    let mut one_masked = updates[0].1.clone();
    aggregator.apply_mask(participants[0], &mut one_masked);
    let distortion: f32 = one_masked
        .iter()
        .zip(updates[0].1.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();

    println!(
        "\nsecure aggregation over {} clients, d = {dim}:",
        participants.len()
    );
    println!("  max |masked sum − plain sum|   = {max_err:.2e} (masks cancel exactly)");
    println!("  ‖masked upload − raw upload‖   = {distortion:.2} (individual uploads are hidden)");
}
