//! Engine-refactor parity and robustness tests.
//!
//! Two pins:
//!
//! 1. **Parity** — the legacy `Simulation` facade and the unified
//!    `RoundEngine` + `SyncRounds` scheduler produce *identical*
//!    `RunHistory` values (and global models) for the same seed, for both
//!    FedADMM and FedAvg. This is the refactor's contract: the wrapper is
//!    thin and the engine reproduces the legacy synchronous semantics
//!    byte for byte.
//! 2. **Robustness** — under the `SemiAsync` deadline scheduler on a
//!    straggler fleet, FedADMM keeps learning from staleness-damped late
//!    arrivals (its uploads are *deltas*, so damping merely shrinks a
//!    correction), while FedAvg — whose uploads are full models that the
//!    server averages — is visibly hurt by the same damping. This is the
//!    paper's system-heterogeneity robustness claim transported to the
//!    deadline regime.

#![allow(deprecated)] // the parity tests exercise the legacy facade on purpose

use fedadmm::prelude::*;
use fedadmm::telemetry::names;
use fedadmm_core::engine::{DispatchConfig, DispatchMode, RoundEngine, WirePathConfig};
use proptest::prelude::*;

fn config(num_clients: usize, seed: u64, system_heterogeneity: bool) -> FedConfig {
    FedConfig {
        num_clients,
        participation: Participation::Fraction(0.3),
        local_epochs: 3,
        system_heterogeneity,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    }
}

fn data(num_clients: usize, seed: u64) -> (fedadmm::data::Dataset, fedadmm::data::Dataset) {
    SyntheticDataset::Mnist.generate(num_clients * 30, 120, seed)
}

/// Runs both paths with the same seed and asserts identical histories.
fn assert_parity<A: Algorithm + Clone>(algorithm: A, seed: u64, rounds: usize) {
    let num_clients = 8;
    let cfg = config(num_clients, seed, true);
    let (train, test) = data(num_clients, seed);
    let partition = DataDistribution::Iid.partition(&train, num_clients, seed);

    let mut legacy = Simulation::new(
        cfg,
        train.clone(),
        test.clone(),
        partition.clone(),
        algorithm.clone(),
    )
    .unwrap();
    legacy.run_rounds(rounds).unwrap();

    let mut engine = RoundEngine::new(
        config(num_clients, seed, true),
        train,
        test,
        partition,
        algorithm,
        SyncRounds,
    )
    .unwrap();
    engine.run_rounds(rounds).unwrap();

    assert_eq!(
        legacy.global_model(),
        engine.global_model(),
        "global models diverged between the legacy facade and the engine"
    );
    // Histories must agree exactly, modulo the wall-clock timing field.
    let (lh, eh) = (legacy.history(), engine.history());
    assert_eq!(lh.algorithm, eh.algorithm);
    assert_eq!(lh.setting, eh.setting);
    assert_eq!(lh.len(), eh.len());
    for (a, b) in lh.records.iter().zip(eh.records.iter()) {
        assert_eq!(a.round, b.round);
        assert_eq!(
            a.test_accuracy, b.test_accuracy,
            "accuracy diverged at round {}",
            a.round
        );
        assert_eq!(a.test_loss, b.test_loss);
        assert_eq!(a.num_selected, b.num_selected);
        assert_eq!(a.upload_floats, b.upload_floats);
        assert_eq!(a.cumulative_upload_floats, b.cumulative_upload_floats);
        assert_eq!(a.total_local_epochs, b.total_local_epochs);
        assert_eq!(a.samples_processed, b.samples_processed);
    }
}

/// FNV-1a digest over every schedule-independent field of a run: the full
/// round history (modulo wall-clock timing) plus the bit pattern of the
/// final global model.
fn run_digest(history: &RunHistory, global: &ParamVector) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut fold = |x: u64| {
        for byte in x.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
        }
    };
    for r in &history.records {
        fold(r.round as u64);
        fold(u64::from(r.test_accuracy.to_bits()));
        fold(u64::from(r.test_loss.to_bits()));
        fold(r.num_selected as u64);
        fold(r.upload_floats as u64);
        fold(r.cumulative_upload_floats as u64);
        fold(r.total_local_epochs as u64);
        fold(r.samples_processed as u64);
        fold(r.staleness_mean.to_bits());
        fold(r.staleness_max as u64);
    }
    for &x in global.as_slice() {
        fold(u64::from(x.to_bits()));
    }
    h
}

#[test]
fn in_memory_engine_matches_pre_refactor_golden_digest() {
    // Pinned from the engine as it stood before the client-state-store
    // refactor: an `InMemoryStore`-backed run must reproduce the exact
    // trajectory (selection, RNG streams, float-op order) of the engine
    // that owned a dense `Vec<ClientState>`. Any reordering of the
    // aggregation arithmetic or the dispatch seeding changes this digest.
    let num_clients = 9;
    let cfg = config(num_clients, 93, true);
    let (train, test) = data(num_clients, 93);
    let partition = DataDistribution::NonIidShards.partition(&train, num_clients, 93);
    // The digest is compared against a constant, so the wire path is
    // pinned off regardless of FEDADMM_WIRE_PATH (CI re-runs this suite
    // with the wire path forced on).
    let mut engine = RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SyncRounds,
    )
    .unwrap()
    .with_wire_path(WirePathConfig::disabled());
    engine.run_rounds(4).unwrap();
    let digest = run_digest(engine.history(), engine.global_model());
    assert_eq!(
        digest, GOLDEN_DIGEST,
        "seeded run diverged from the pre-refactor engine (digest {digest:#018x})"
    );
}

const GOLDEN_DIGEST: u64 = 0xa147_b46a_ce24_2a96;

/// Runs the golden-digest scenario on an explicitly configured dispatch
/// pool and returns the run digest.
fn digest_with_dispatch(dispatch: DispatchConfig) -> u64 {
    let num_clients = 9;
    let cfg = config(num_clients, 93, true);
    let (train, test) = data(num_clients, 93);
    let partition = DataDistribution::NonIidShards.partition(&train, num_clients, 93);
    let mut engine = RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SyncRounds,
    )
    .unwrap()
    .with_dispatch(dispatch)
    .with_wire_path(WirePathConfig::disabled());
    engine.run_rounds(4).unwrap();
    run_digest(engine.history(), engine.global_model())
}

#[test]
fn dispatch_is_byte_identical_across_worker_counts_and_chunk_sizes() {
    // The work-stealing pool may hand any job to any worker in any chunking;
    // because every job's RNG stream is (seed, round, client)-derived and
    // results are collected in client-id order, the digest must not move.
    for workers in [1usize, 2, 3, 8] {
        for chunk in [1usize, 4] {
            let dispatch = DispatchConfig {
                workers: Some(workers),
                chunk_size: Some(chunk),
                mode: Some(DispatchMode::WorkStealing),
            };
            assert_eq!(
                digest_with_dispatch(dispatch),
                GOLDEN_DIGEST,
                "digest moved with {workers} workers, chunk {chunk}"
            );
        }
    }
    // The preserved legacy static round-robin schedule agrees too.
    let legacy = DispatchConfig {
        workers: Some(3),
        chunk_size: None,
        mode: Some(DispatchMode::Static),
    };
    assert_eq!(
        digest_with_dispatch(legacy),
        GOLDEN_DIGEST,
        "digest moved under the legacy static schedule"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Byte-identity holds for *arbitrary* pool geometry, not just the
    /// hand-picked worker/chunk pairs (few cases — each is a full seeded
    /// training run).
    #[test]
    fn dispatch_digest_is_invariant_under_arbitrary_pool_geometry(
        workers in 1usize..=8,
        chunk in 1usize..=9,
    ) {
        let dispatch = DispatchConfig {
            workers: Some(workers),
            chunk_size: Some(chunk),
            mode: Some(DispatchMode::WorkStealing),
        };
        prop_assert_eq!(digest_with_dispatch(dispatch), GOLDEN_DIGEST);
    }
}

#[test]
fn work_stealing_beats_static_partitioning_under_straggler_skew() {
    // One client runs 32 local epochs while 47 run one. Under static
    // round-robin the straggler's partition serializes its whole share
    // behind the slow job; the pool rebalances it across workers. Needs
    // real parallelism to measure, so the test is a no-op on 1-CPU hosts.
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if parallelism < 2 {
        eprintln!("skipping straggler wall-clock test: 1 CPU available");
        return;
    }
    let workers = parallelism.min(4);
    let num_clients = 48;
    let run = |mode: DispatchMode| -> f64 {
        let cfg = FedConfig {
            num_clients,
            participation: Participation::Fraction(1.0),
            local_epochs: 1,
            system_heterogeneity: false,
            batch_size: BatchSize::Size(8),
            local_learning_rate: 0.05,
            model: ModelSpec::Logistic {
                input_dim: 784,
                num_classes: 10,
            },
            seed: 7,
            eval_subset: usize::MAX,
        };
        let (train, test) = SyntheticDataset::Mnist.generate(num_clients * 8, 60, 7);
        let partition = DataDistribution::Iid.partition(&train, num_clients, 7);
        let epochs: Vec<usize> = (0..num_clients)
            .map(|c| if c == 0 { 32 } else { 1 })
            .collect();
        let mut engine = RoundEngine::new(
            cfg,
            train,
            test,
            partition,
            FedAdmm::paper_default(),
            SyncRounds,
        )
        .unwrap()
        .with_work_schedule(LocalWorkSchedule::PerClient(epochs))
        .eval_subset(0.25)
        .with_dispatch(DispatchConfig {
            workers: Some(workers),
            chunk_size: None,
            mode: Some(mode),
        });
        // Warm-up round (thread spawn, cache fill), then the timed window.
        engine.run_rounds(1).unwrap();
        let start = std::time::Instant::now();
        engine.run_rounds(3).unwrap();
        start.elapsed().as_secs_f64()
    };
    // Min-of-two per mode bounds scheduler noise.
    let static_secs = run(DispatchMode::Static).min(run(DispatchMode::Static));
    let steal_secs = run(DispatchMode::WorkStealing).min(run(DispatchMode::WorkStealing));
    assert!(
        steal_secs < static_secs,
        "work-stealing ({steal_secs:.3}s) should beat static partitioning \
         ({static_secs:.3}s) on a straggler-skewed cohort with {workers} workers"
    );
}

#[test]
fn sync_engine_reproduces_legacy_simulation_for_fedadmm() {
    assert_parity(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), 21, 5);
}

#[test]
fn sync_engine_reproduces_legacy_simulation_for_fedavg() {
    assert_parity(FedAvg::new(), 22, 5);
}

#[test]
fn sync_engine_parity_holds_under_participation_ratio_step() {
    assert_parity(FedAdmm::new(0.3, ServerStepSize::ParticipationRatio), 23, 4);
}

#[test]
fn engine_is_deterministic_across_runs() {
    // The parallel dispatch path derives every client's RNG stream from
    // (seed, round, client), so two runs must agree bit for bit regardless
    // of thread interleaving.
    let num_clients = 10;
    let make = || {
        let cfg = config(num_clients, 31, true);
        let (train, test) = data(num_clients, 31);
        let partition = DataDistribution::NonIidShards.partition(&train, num_clients, 31);
        RoundEngine::new(
            cfg,
            train,
            test,
            partition,
            FedAdmm::paper_default(),
            SyncRounds,
        )
        .unwrap()
    };
    let mut a = make();
    let mut b = make();
    a.run_rounds(4).unwrap();
    b.run_rounds(4).unwrap();
    assert_eq!(a.global_model(), b.global_model());
    // Histories agree on everything except wall-clock timing.
    let mut ha = a.history().clone();
    let mut hb = b.history().clone();
    for r in ha.records.iter_mut().chain(hb.records.iter_mut()) {
        r.elapsed_ms = 0;
    }
    assert_eq!(ha, hb);
}

#[test]
fn instrumented_run_is_byte_identical_to_uninstrumented() {
    // Telemetry is observation only: installing a full `Recorder` (spans,
    // counters, histograms, per-client timings) must not perturb a single
    // bit of the training trajectory. Timing reads are gated on
    // `Telemetry::enabled`, so the only code that may differ between the
    // two runs is clock reads and metric bookkeeping — never RNG draws,
    // selection, or arithmetic.
    let num_clients = 10;
    let make = || {
        let cfg = config(num_clients, 77, true);
        let (train, test) = data(num_clients, 77);
        let partition = DataDistribution::NonIidShards.partition(&train, num_clients, 77);
        RoundEngine::new(
            cfg,
            train,
            test,
            partition,
            FedAdmm::paper_default(),
            SyncRounds,
        )
        .unwrap()
    };
    let mut plain = make();
    let mut instrumented = make().with_telemetry(Box::new(Recorder::new()));
    plain.run_rounds(5).unwrap();
    instrumented.run_rounds(5).unwrap();

    assert_eq!(
        plain.global_model(),
        instrumented.global_model(),
        "recording telemetry changed the trained model"
    );
    // Histories agree on everything except wall-clock timing.
    let mut hp = plain.history().clone();
    let mut hi = instrumented.history().clone();
    for r in hp.records.iter_mut().chain(hi.records.iter_mut()) {
        r.elapsed_ms = 0;
    }
    assert_eq!(hp, hi, "recording telemetry changed the run history");

    // And the recorder actually observed the run it rode along with.
    let telemetry = instrumented.take_telemetry();
    let recorder = telemetry
        .as_any()
        .and_then(|a| a.downcast_ref::<Recorder>())
        .expect("engine hands back the installed recorder");
    assert_eq!(
        recorder.metrics().counter_by_name(names::ROUNDS_TOTAL),
        Some(5)
    );
    assert!(!recorder.tracer().is_empty());
}

/// Builds a semi-async engine over a straggler fleet for `algorithm`.
///
/// Half the fleet is 3× slower than the round deadline allows, so its
/// updates recur 1–3 rounds late (staleness-damped) round after round —
/// the regime the deadline scheduler exists for.
fn semi_async_run<A: Algorithm>(algorithm: A, rounds: usize, seed: u64) -> (f32, f32, usize) {
    let num_clients = 10;
    let cfg = FedConfig {
        participation: Participation::Fraction(0.5),
        ..config(num_clients, seed, false)
    };
    let (train, test) = data(num_clients, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, num_clients, seed);
    let fleet = SemiAsyncConfig::two_tier(num_clients, 1.0, 0.5, 3.0, 3.5)
        .with_staleness(StalenessWeight::Polynomial { exponent: 0.5 });
    let mut engine = RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        algorithm,
        SemiAsync::new(fleet),
    )
    .unwrap();
    let (_, acc0) = engine.evaluate_global().unwrap();
    engine.run_rounds(rounds).unwrap();
    let (_, acc1) = engine.evaluate_global().unwrap();
    let stale_applied = engine
        .events()
        .iter()
        .filter(|e| e.staleness > 0 && e.weight > 0.0)
        .count();
    (acc0, acc1, stale_applied)
}

#[test]
fn semi_async_fedadmm_tolerates_stragglers_where_fedavg_degrades() {
    // Long enough for FedADMM's dual tracking to absorb the recurring
    // stale deltas; everything is seeded, so the run is deterministic.
    let rounds = 36;
    let (admm_0, admm_1, admm_stale) =
        semi_async_run(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), rounds, 42);
    let (_, avg_1, avg_stale) = semi_async_run(FedAvg::new(), rounds, 42);

    // The straggler tier actually participated late in both runs.
    assert!(admm_stale > 0, "no stale FedADMM updates were applied");
    assert!(avg_stale > 0, "no stale FedAvg updates were applied");

    // FedADMM keeps learning despite half its fleet arriving late: its
    // uploads are *deltas*, so a damped stale delta is a smaller
    // correction, and the dual variables re-absorb the residual the next
    // time the client participates.
    assert!(
        admm_1 > admm_0 + 0.6,
        "semi-async FedADMM only moved accuracy {admm_0} → {admm_1}"
    );
    // FedAvg replaces θ by an average that keeps folding in stale,
    // down-weighted full models, dragging the global model toward old
    // client optima — it lands clearly below FedADMM on the same fleet.
    assert!(
        admm_1 > avg_1 + 0.1,
        "FedADMM ({admm_1}) should beat FedAvg ({avg_1}) under deadline scheduling"
    );
}

#[test]
fn semi_async_applies_every_selected_clients_work_eventually() {
    // No update is lost: every dispatched job eventually arrives (within
    // the horizon) or is still tracked as in flight.
    let num_clients = 8;
    let cfg = config(num_clients, 51, false);
    let (train, test) = data(num_clients, 51);
    let partition = DataDistribution::Iid.partition(&train, num_clients, 51);
    let fleet = SemiAsyncConfig::two_tier(num_clients, 1.0, 0.25, 6.0, 3.0);
    let mut engine = RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SemiAsync::new(fleet),
    )
    .unwrap();
    let records = engine.run_rounds(8).unwrap();
    assert_eq!(records.len(), 8);
    let arrived = engine.events().len();
    let in_flight = engine.scheduler().stragglers_in_flight();
    assert!(arrived > 0);
    // Each arrival is either fresh (staleness 0) or a carried-over
    // straggler; the two together account for all dispatched work.
    assert!(engine.events().iter().all(|e| e.weight > 0.0));
    assert!(in_flight <= engine.config().num_clients);
}
