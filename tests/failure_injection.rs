//! Failure injection: FedADMM under hostile participation patterns.
//!
//! The paper's key robustness claim (Remark 2) is that convergence only
//! requires clients to participate *infinitely often* — no minimum number of
//! active clients per round, no bounded delay, no uniformity. These tests
//! drive the full neural-network simulation through deterministic,
//! adversarially skewed and decaying activation schemes, through mid-round
//! client dropout, and through rounds with a single survivor, and check that
//! training still makes progress (while FedAvg-style methods are free to
//! degrade).

use fedadmm::core::selection::{DecayingProbabilities, FixedProbabilities, RoundRobin};
use fedadmm::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn config(num_clients: usize, seed: u64) -> FedConfig {
    FedConfig {
        num_clients,
        participation: Participation::Fraction(0.2),
        local_epochs: 2,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    }
}

fn simulation(
    num_clients: usize,
    samples: usize,
    seed: u64,
    distribution: DataDistribution,
) -> SyncEngine<FedAdmm> {
    let cfg = config(num_clients, seed);
    let (train, test) = SyntheticDataset::Mnist.generate(samples, 200, seed);
    let partition = distribution.partition(&train, num_clients, seed);
    RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
        SyncRounds,
    )
    .unwrap()
}

#[test]
fn round_robin_activation_still_learns() {
    // Fully deterministic activation — no randomness at all in who is
    // selected — satisfies infinitely-often participation and must converge.
    let mut sim = simulation(20, 2000, 1, DataDistribution::NonIidShards)
        .with_selector(Box::new(RoundRobin::new(4)));
    let (_, acc0) = sim.evaluate_global().unwrap();
    sim.run_rounds(25).unwrap();
    let report = DriftReport::compute(sim.clients(), sim.global_model());
    assert_eq!(
        report.clients_ever_selected, 20,
        "round robin must cover every client"
    );
    assert!(
        sim.history().best_accuracy() > acc0 + 0.3,
        "accuracy only moved from {acc0} to {}",
        sim.history().best_accuracy()
    );
}

#[test]
fn heavily_skewed_participation_probabilities_do_not_break_convergence() {
    // Client 0 participates almost every round; the rest only 5% of the
    // time. This is exactly the "unbalanced client activation" regime that
    // the dual variables and the proximal term are supposed to absorb.
    let m = 15;
    let mut probs = vec![0.05; m];
    probs[0] = 0.95;
    let mut sim = simulation(m, 1500, 2, DataDistribution::NonIidShards)
        .with_selector(Box::new(FixedProbabilities::new(probs)));
    let (_, acc0) = sim.evaluate_global().unwrap();
    sim.run_rounds(40).unwrap();
    assert!(
        sim.history().best_accuracy() > acc0 + 0.3,
        "skewed activation stalled training at {}",
        sim.history().best_accuracy()
    );
    // The frequently selected client must not have dragged the global model
    // onto its own two classes: accuracy is measured over all ten classes.
    let report = DriftReport::compute(sim.clients(), sim.global_model());
    assert!(report.max_times_selected > 5 * report.min_times_selected.max(1));
}

#[test]
fn decaying_availability_satisfies_infinitely_often_and_keeps_improving() {
    // Participation probability decays harmonically (Σ_t p_t = ∞). Early
    // rounds carry most of the progress; later sparse rounds must not undo
    // it.
    let m = 20;
    let mut sim = simulation(m, 2000, 3, DataDistribution::Iid)
        .with_selector(Box::new(DecayingProbabilities::new(vec![0.6; m], 15.0)));
    sim.run_rounds(30).unwrap();
    let best_early = sim
        .history()
        .records
        .iter()
        .take(15)
        .map(|r| r.test_accuracy)
        .fold(0.0f32, f32::max);
    let final_acc = sim.history().final_accuracy();
    assert!(
        best_early > 0.5,
        "early rounds should learn, got {best_early}"
    );
    assert!(
        final_acc > best_early - 0.1,
        "late sparse rounds catastrophically regressed: {best_early} → {final_acc}"
    );
}

#[test]
fn mid_round_dropout_only_slows_training_down() {
    // 40% of participating clients fail to report back each round. The
    // surviving updates still move the model; dropped clients simply keep
    // their stale (w_i, y_i) until they succeed — the same mechanism that
    // handles non-selection.
    let m = 20;
    let cfg = config(m, 4);
    let (train, test) = SyntheticDataset::Mnist.generate(2000, 200, 4);
    let partition = DataDistribution::NonIidShards.partition(&train, m, 4);
    let mut sim = RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
        SyncRounds,
    )
    .unwrap();
    let injector = DropoutInjector::new(0.4);
    let mut rng = SmallRng::seed_from_u64(99);
    let full_selection: Vec<usize> = (0..m).collect();
    let mut reached = false;
    for _ in 0..30 {
        // Model dropout by shrinking the selector's universe each round:
        // survivors are sampled first, then handed to the simulation as the
        // round's "selected" clients via a fixed-probability selector of
        // exactly those ids.
        let (survivors, dropped) = injector.split(&full_selection, &mut rng);
        assert!(!survivors.is_empty());
        assert_eq!(survivors.len() + dropped.len(), m);
        let mut probs = vec![0.0f64; m];
        let mut any = false;
        for &s in survivors.iter().take(4) {
            probs[s] = 1.0;
            any = true;
        }
        assert!(any);
        // Replace the selector for this round only.
        sim = sim.with_selector(Box::new(FixedProbabilities::new(probs)));
        let record = sim.run_round().unwrap();
        if record.test_accuracy > 0.6 {
            reached = true;
            break;
        }
    }
    assert!(
        reached,
        "dropout prevented the run from ever reaching 60% accuracy"
    );
}

#[test]
fn single_survivor_rounds_do_not_diverge() {
    // The most extreme partial participation: exactly one client per round.
    // FedADMM's strongly convex subproblems guarantee each round makes
    // bounded, non-divergent progress (Section I, contribution list).
    let m = 10;
    let mut sim = simulation(m, 1000, 5, DataDistribution::NonIidShards)
        .with_selector(Box::new(fedadmm::core::selection::UniformFraction::new(1)));
    sim.run_rounds(40).unwrap();
    let accuracies = sim.history().accuracy_series();
    assert!(accuracies.iter().all(|a| a.is_finite()));
    let best = sim.history().best_accuracy();
    assert!(
        best > 0.35,
        "single-client rounds should still learn, got {best}"
    );
    // No catastrophic collapse at the end of the run.
    assert!(sim.history().final_accuracy() > best - 0.25);
}

#[test]
fn fedadmm_keeps_all_client_state_consistent_under_failures() {
    // State invariants that must hold whatever the participation pattern:
    // all stored vectors stay finite, never-selected clients still have
    // their zero-initialised dual (they have not run line 20 yet), and the
    // round-robin coverage accounting matches the per-client counters.
    let m = 12;
    let mut sim = simulation(m, 1200, 6, DataDistribution::NonIidShards)
        .with_selector(Box::new(RoundRobin::new(2)));
    sim.run_rounds(4).unwrap(); // covers 8 of the 12 clients
    let selected_total: usize = sim.clients().iter().map(|c| c.times_selected).sum();
    assert_eq!(selected_total, 8);
    for client in sim.clients() {
        assert!(client.local_model.as_slice().iter().all(|v| v.is_finite()));
        assert!(client.dual.as_slice().iter().all(|v| v.is_finite()));
        if client.times_selected == 0 {
            assert_eq!(
                client.dual.norm(),
                0.0,
                "client {} never ran line 20",
                client.id
            );
        } else {
            assert!(
                client.times_selected == 1,
                "round robin selects each client at most once here"
            );
        }
    }
    let report = DriftReport::compute(sim.clients(), sim.global_model());
    assert_eq!(report.clients_ever_selected, 8);
}
