//! End-to-end integration tests: data generation → partitioning → federated
//! training → evaluation, across crates.

use fedadmm::prelude::*;

fn base_config(num_clients: usize, seed: u64) -> FedConfig {
    FedConfig {
        num_clients,
        participation: Participation::Fraction(0.2),
        local_epochs: 3,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 24,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    }
}

fn build(
    algorithm: Box<dyn Algorithm>,
    distribution: DataDistribution,
    num_clients: usize,
    samples: usize,
    seed: u64,
) -> SyncEngine<Box<dyn Algorithm>> {
    let config = base_config(num_clients, seed);
    let (train, test) = SyntheticDataset::Mnist.generate(samples, 200, seed);
    let partition = distribution.partition(&train, num_clients, seed);
    RoundEngine::new(config, train, test, partition, algorithm, SyncRounds)
        .expect("valid configuration")
}

#[test]
fn fedadmm_learns_iid_task_end_to_end() {
    let mut sim = build(
        Box::new(FedAdmm::new(SUBSTRATE_RHO, ServerStepSize::Constant(1.0))),
        DataDistribution::Iid,
        15,
        600,
        1,
    );
    let (_, acc_before) = sim.evaluate_global().unwrap();
    sim.run_rounds(12).unwrap();
    let best = sim.history().best_accuracy();
    assert!(
        best > acc_before + 0.25,
        "FedADMM failed to learn: {acc_before:.3} -> {best:.3}"
    );
}

/// The substrate-calibrated fixed ρ (see `fedadmm-experiments::common::SUBSTRATE_RHO`
/// and the discussion in DESIGN.md / EXPERIMENTS.md).
const SUBSTRATE_RHO: f32 = 0.3;

#[test]
fn fedadmm_learns_under_label_skew() {
    // The paper's non-IID setting: two label shards per client. FedADMM must
    // still make substantial progress (the dual variables counteract drift).
    let mut sim = build(
        Box::new(FedAdmm::new(SUBSTRATE_RHO, ServerStepSize::Constant(1.0))),
        DataDistribution::NonIidShards,
        15,
        600,
        2,
    );
    sim.run_rounds(15).unwrap();
    assert!(
        sim.history().best_accuracy() > 0.35,
        "best accuracy only {:.3} under label skew",
        sim.history().best_accuracy()
    );
}

/// The qualitative headline of Table III at integration-test scale:
/// under the paper's protocol (100 clients, 10% participation, label-skewed
/// shards, variable local work) FedADMM reaches a high accuracy target and
/// stays within a small factor of FedAvg's round count. On this synthetic
/// substrate (MLP on generated class-conditional images, vendored PRNG)
/// FedAvg's full-model averaging converges unusually fast, so a strict
/// "fewer rounds" ordering does not reproduce here — FedADMM's edge on the
/// substrate shows instead in robustness regimes (straggler tolerance,
/// see tests/engine_parity.rs, and long-horizon non-IID accuracy).
/// This test is deliberately larger than the other tests.
#[test]
fn fedadmm_outperforms_fedavg_in_rounds_to_target_non_iid() {
    let target = 0.9;
    let budget = 45;
    let num_clients = 100;
    let samples = 100 * 100;
    let config = FedConfig {
        num_clients,
        participation: Participation::Fraction(0.1),
        local_epochs: 5,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Mlp {
            input_dim: 784,
            hidden_dim: 32,
            num_classes: 10,
        },
        seed: 42,
        eval_subset: 400,
    };
    let (train, test) = SyntheticDataset::Mnist.generate(samples, 400, 42);
    let partition = DataDistribution::NonIidShards.partition(&train, num_clients, 42);

    let mut admm = RoundEngine::new(
        config,
        train.clone(),
        test.clone(),
        partition.clone(),
        Box::new(FedAdmm::new(SUBSTRATE_RHO, ServerStepSize::Constant(1.0))) as Box<dyn Algorithm>,
        SyncRounds,
    )
    .unwrap();
    let admm_rounds = admm
        .run_until_accuracy(target, budget)
        .unwrap()
        .unwrap_or(budget + 1);

    let mut avg = RoundEngine::new(
        config,
        train,
        test,
        partition,
        Box::new(FedAvg::new()) as Box<dyn Algorithm>,
        SyncRounds,
    )
    .unwrap();
    let avg_rounds = avg
        .run_until_accuracy(target, budget)
        .unwrap()
        .unwrap_or(budget + 1);
    assert!(
        admm_rounds <= budget,
        "FedADMM never reached {target} within {budget} rounds"
    );
    assert!(
        admm_rounds * 2 <= avg_rounds * 3,
        "FedADMM took {admm_rounds} rounds but FedAvg took {avg_rounds} (allowed factor 1.5)"
    );
}

#[test]
fn all_five_algorithms_complete_a_short_non_iid_run() {
    let algorithms: Vec<(&str, Box<dyn Algorithm>)> = vec![
        ("FedSGD", Box::new(FedSgd::new(0.1))),
        ("FedADMM", Box::new(FedAdmm::paper_default())),
        ("FedAvg", Box::new(FedAvg::new())),
        ("FedProx", Box::new(FedProx::new(0.1))),
        ("SCAFFOLD", Box::new(Scaffold::new())),
    ];
    for (name, algorithm) in algorithms {
        let mut sim = build(algorithm, DataDistribution::NonIidShards, 10, 300, 4);
        let records = sim.run_rounds(3).unwrap();
        assert_eq!(records.len(), 3, "{name} did not complete 3 rounds");
        for r in &records {
            assert!(
                r.test_accuracy.is_finite(),
                "{name} produced a non-finite accuracy"
            );
            assert!(r.test_loss.is_finite(), "{name} produced a non-finite loss");
        }
        assert_eq!(sim.history().algorithm, name);
    }
}

#[test]
fn communication_accounting_matches_algorithm_costs() {
    // FedADMM/FedAvg/FedProx upload d floats per selected client per round;
    // SCAFFOLD uploads 2d. The recorded cumulative upload must reflect that.
    let d = ModelSpec::Mlp {
        input_dim: 784,
        hidden_dim: 24,
        num_classes: 10,
    }
    .num_params();
    let rounds = 3;
    let mut admm = build(
        Box::new(FedAdmm::paper_default()),
        DataDistribution::Iid,
        10,
        300,
        5,
    );
    admm.run_rounds(rounds).unwrap();
    let admm_upload = admm.history().total_upload_floats();
    let selected_per_round = 2; // 20% of 10 clients
    assert_eq!(admm_upload, rounds * selected_per_round * d);

    let mut scaffold = build(Box::new(Scaffold::new()), DataDistribution::Iid, 10, 300, 5);
    scaffold.run_rounds(rounds).unwrap();
    assert_eq!(scaffold.history().total_upload_floats(), 2 * admm_upload);
}

#[test]
fn fedadmm_communication_matches_fedavg_exactly() {
    // "FedADMM maintains identical communication costs per round as
    // FedAvg/Prox" — abstract of the paper.
    let mut admm = build(
        Box::new(FedAdmm::paper_default()),
        DataDistribution::Iid,
        10,
        300,
        6,
    );
    let mut avg = build(Box::new(FedAvg::new()), DataDistribution::Iid, 10, 300, 6);
    admm.run_rounds(4).unwrap();
    avg.run_rounds(4).unwrap();
    assert_eq!(
        admm.history().total_upload_floats(),
        avg.history().total_upload_floats()
    );
}

#[test]
fn system_heterogeneity_reduces_total_computation() {
    // Variable local epochs (FedADMM/FedProx protocol) must process fewer
    // samples than the fixed-E protocol (FedAvg/SCAFFOLD) over the same
    // number of rounds — the paper's "50% less training computation" claim.
    let mut admm = build(
        Box::new(FedAdmm::paper_default()),
        DataDistribution::Iid,
        10,
        300,
        7,
    );
    let mut avg = build(Box::new(FedAvg::new()), DataDistribution::Iid, 10, 300, 7);
    admm.run_rounds(6).unwrap();
    avg.run_rounds(6).unwrap();
    let admm_epochs = admm.history().total_local_epochs();
    let avg_epochs = avg.history().total_local_epochs();
    assert!(
        admm_epochs < avg_epochs,
        "heterogeneous work ({admm_epochs} epochs) not less than fixed work ({avg_epochs} epochs)"
    );
}

#[test]
fn runs_are_reproducible_across_identical_simulations() {
    let mut a = build(
        Box::new(FedAdmm::paper_default()),
        DataDistribution::NonIidShards,
        12,
        360,
        8,
    );
    let mut b = build(
        Box::new(FedAdmm::paper_default()),
        DataDistribution::NonIidShards,
        12,
        360,
        8,
    );
    let ra = a.run_rounds(4).unwrap();
    let rb = b.run_rounds(4).unwrap();
    for (x, y) in ra.iter().zip(rb.iter()) {
        assert_eq!(x.test_accuracy, y.test_accuracy);
        assert_eq!(x.upload_floats, y.upload_floats);
    }
}

#[test]
fn fedpd_requires_and_uses_full_participation() {
    let config = base_config(8, 9);
    let (train, test) = SyntheticDataset::Mnist.generate(240, 100, 9);
    let partition = DataDistribution::Iid.partition(&train, 8, 9);
    let mut sim = RoundEngine::new(
        config,
        train,
        test,
        partition,
        Box::new(FedPd::new(0.01, 0.5)) as Box<dyn Algorithm>,
        SyncRounds,
    )
    .unwrap();
    let records = sim.run_rounds(4).unwrap();
    for r in &records {
        assert_eq!(
            r.num_selected, 8,
            "FedPD must activate every client every round"
        );
    }
    // On non-communication rounds no floats are uploaded.
    let uploads: Vec<usize> = records.iter().map(|r| r.upload_floats).collect();
    assert!(uploads.contains(&0) || uploads.iter().all(|&u| u > 0));
}

#[test]
fn dual_variables_stay_zero_for_primal_methods_and_move_for_fedadmm() {
    let mut admm = build(
        Box::new(FedAdmm::paper_default()),
        DataDistribution::NonIidShards,
        10,
        300,
        10,
    );
    admm.run_rounds(3).unwrap();
    assert!(
        admm.clients().iter().any(|c| c.dual.norm() > 0.0),
        "FedADMM never updated any dual variable"
    );

    let mut avg = build(
        Box::new(FedAvg::new()),
        DataDistribution::NonIidShards,
        10,
        300,
        10,
    );
    avg.run_rounds(3).unwrap();
    assert!(
        avg.clients().iter().all(|c| c.dual.norm() == 0.0),
        "FedAvg must not touch dual variables"
    );
}
