//! Integration tests for the privacy extensions (DP + secure aggregation)
//! composed with the full federated simulation.

use fedadmm::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn config(num_clients: usize, seed: u64) -> FedConfig {
    FedConfig {
        num_clients,
        participation: Participation::Fraction(0.25),
        local_epochs: 2,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    }
}

fn private_simulation(
    mechanism: GaussianMechanism,
    seed: u64,
) -> SyncEngine<PrivateAlgorithm<FedAdmm>> {
    let cfg = config(16, seed);
    let (train, test) = SyntheticDataset::Mnist.generate(1600, 200, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, 16, seed);
    RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        PrivateAlgorithm::new(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), mechanism),
        SyncRounds,
    )
    .unwrap()
}

#[test]
fn dp_fedadmm_learns_under_moderate_noise_and_tracks_its_budget() {
    let mechanism = GaussianMechanism::new(20.0, 1e-3);
    let mut sim = private_simulation(mechanism, 1);
    let mut accountant = PrivacyAccountant::new(1e-3, 0.25, 1e-5);
    let (_, acc0) = sim.evaluate_global().unwrap();
    for _ in 0..20 {
        sim.run_round().unwrap();
        accountant.step(1);
    }
    assert!(
        sim.history().best_accuracy() > acc0 + 0.3,
        "DP run failed to learn: {} → {}",
        acc0,
        sim.history().best_accuracy()
    );
    let spent = accountant.spent();
    assert_eq!(spent.rounds, 20);
    assert!(spent.rho_zcdp > 0.0 && spent.epsilon > 0.0);
    // More rounds can only cost more privacy.
    assert!(accountant.forecast(10).epsilon > spent.epsilon);
}

#[test]
fn stronger_noise_costs_accuracy_but_never_breaks_the_run() {
    let gentle = {
        let mut sim = private_simulation(GaussianMechanism::new(20.0, 1e-3), 2);
        sim.run_rounds(15).unwrap();
        sim.history().best_accuracy()
    };
    let harsh = {
        let mut sim = private_simulation(GaussianMechanism::new(20.0, 5e-2), 2);
        sim.run_rounds(15).unwrap();
        let history = sim.history();
        assert!(history.accuracy_series().iter().all(|a| a.is_finite()));
        history.best_accuracy()
    };
    assert!(
        gentle > harsh,
        "more noise must not help: gentle {gentle} vs harsh {harsh}"
    );
}

#[test]
fn clipping_alone_preserves_learning_when_the_threshold_is_loose() {
    // A loose clipping norm should have virtually no effect on the
    // trajectory compared with the unwrapped algorithm.
    let cfg = config(16, 3);
    let (train, test) = SyntheticDataset::Mnist.generate(1600, 200, 3);
    let partition = DataDistribution::NonIidShards.partition(&train, 16, 3);
    let mut plain = RoundEngine::new(
        cfg,
        train.clone(),
        test.clone(),
        partition.clone(),
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
        SyncRounds,
    )
    .unwrap();
    let mut clipped = RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        PrivateAlgorithm::new(
            FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
            GaussianMechanism::new(1e4, 0.0),
        ),
        SyncRounds,
    )
    .unwrap();
    plain.run_rounds(8).unwrap();
    clipped.run_rounds(8).unwrap();
    assert!(plain.global_model().dist(clipped.global_model()) < 1e-4);
    assert!((plain.history().final_accuracy() - clipped.history().final_accuracy()).abs() < 1e-6);
}

#[test]
fn secure_aggregation_recovers_the_exact_fedadmm_server_update() {
    // Simulate the server-side of equation (5) under pairwise masking: the
    // sum of masked Δ_i equals the sum of raw Δ_i, so the resulting global
    // model is bit-for-bit comparable (up to f32 rounding).
    let participants = [0usize, 4, 7, 9, 13, 21];
    let dim = 2_000;
    let mut rng = SmallRng::seed_from_u64(5);
    let deltas: Vec<(usize, Vec<f32>)> = participants
        .iter()
        .map(|&c| (c, (0..dim).map(|_| rng.gen_range(-0.05f32..0.05)).collect()))
        .collect();

    let eta = 1.0f32;
    let mut theta_plain = vec![0.2f32; dim];
    let mut raw_sum = vec![0.0f32; dim];
    for (_, d) in &deltas {
        for (s, v) in raw_sum.iter_mut().zip(d.iter()) {
            *s += v;
        }
    }
    for (t, s) in theta_plain.iter_mut().zip(raw_sum.iter()) {
        *t += eta / participants.len() as f32 * s;
    }

    let aggregator = SecureAggregator::new(0xABCD, &participants, dim);
    let masked_sum = aggregator.masked_sum(&deltas);
    let mut theta_masked = vec![0.2f32; dim];
    for (t, s) in theta_masked.iter_mut().zip(masked_sum.iter()) {
        *t += eta / participants.len() as f32 * s;
    }

    let max_err = theta_plain
        .iter()
        .zip(theta_masked.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_err < 1e-5,
        "secure aggregation changed the server update by {max_err}"
    );
}

#[test]
fn secure_aggregation_survives_dropouts_via_mask_reconstruction() {
    let participants = [1usize, 2, 3, 4, 5, 6, 7, 8];
    let dim = 500;
    let aggregator = SecureAggregator::new(99, &participants, dim);
    let mut rng = SmallRng::seed_from_u64(11);
    let deltas: Vec<(usize, Vec<f32>)> = participants
        .iter()
        .map(|&c| (c, (0..dim).map(|_| rng.gen_range(-0.1f32..0.1)).collect()))
        .collect();
    // Three clients upload their masked messages and then disappear before
    // the unmasking round; the server corrects with the reconstructed masks
    // of the *dropped* clients applied to the survivors' sum.
    let dropped = [2usize, 5, 8];
    let survivors: Vec<(usize, Vec<f32>)> = deltas
        .iter()
        .filter(|(c, _)| !dropped.contains(c))
        .cloned()
        .collect();
    let mut server_sum = aggregator.masked_sum(&survivors);
    let correction = aggregator.dropout_correction(&dropped);
    for (s, c) in server_sum.iter_mut().zip(correction.iter()) {
        *s += c;
    }
    let mut expected = vec![0.0f32; dim];
    for (_, d) in &survivors {
        for (e, v) in expected.iter_mut().zip(d.iter()) {
            *e += v;
        }
    }
    let max_err = server_sum
        .iter()
        .zip(expected.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_err < 1e-4, "dropout recovery failed, error {max_err}");
}

#[test]
fn accountant_matches_hand_computed_zcdp_composition() {
    // q = 0.25, σ = 1e-3 → ρ per round = q²/(2σ²) is enormous; use a
    // realistic deployment instead: σ = 1.2, q = 0.01, T = 500.
    let acc = PrivacyAccountant::new(1.2, 0.01, 1e-5);
    let spent = acc.forecast(500);
    let rho = 0.01f64 * 0.01 / (2.0 * 1.2 * 1.2) * 500.0;
    assert!((spent.rho_zcdp - rho).abs() < 1e-12);
    let eps = rho + 2.0 * (rho * (1.0f64 / 1e-5).ln()).sqrt();
    assert!((spent.epsilon - eps).abs() < 1e-12);
    assert!(
        spent.epsilon < 1.0,
        "a realistic deployment stays under ε = 1: {}",
        spent.epsilon
    );
}
