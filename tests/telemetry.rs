//! Integration tests for the observability seam: a [`Recorder`] installed
//! on the engine observes real runs under every scheduler, the trace tree
//! mirrors the tick/phase structure, exported JSON round-trips through the
//! vendored serializer, and the opt-in optimality-gap gauge reports the
//! paper's `V_t` diagnostic per round.

use fedadmm::data::partition::Partition;
use fedadmm::prelude::*;
use fedadmm::telemetry::{names, SpanRecord};
use fedadmm_core::engine::RoundEngine;

fn config(num_clients: usize, seed: u64) -> FedConfig {
    FedConfig {
        num_clients,
        participation: Participation::Fraction(0.5),
        local_epochs: 2,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    }
}

fn engine_parts(
    num_clients: usize,
    seed: u64,
) -> (
    FedConfig,
    fedadmm::data::Dataset,
    fedadmm::data::Dataset,
    Partition,
) {
    let cfg = config(num_clients, seed);
    let (train, test) = SyntheticDataset::Mnist.generate(num_clients * 30, 120, seed);
    let partition = DataDistribution::Iid.partition(&train, num_clients, seed);
    (cfg, train, test, partition)
}

/// Downcasts the boxed hooks an engine hands back to the `Recorder` that
/// was installed.
fn recorder_of(telemetry: &dyn Telemetry) -> &Recorder {
    telemetry
        .as_any()
        .and_then(|a| a.downcast_ref::<Recorder>())
        .expect("installed telemetry is the recorder")
}

#[test]
fn recorder_observes_a_sync_run() {
    let (cfg, train, test, partition) = engine_parts(8, 11);
    let rounds = 3;
    let mut engine = RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SyncRounds,
    )
    .unwrap()
    .with_telemetry(Box::new(Recorder::new()));
    engine.run_rounds(rounds).unwrap();

    let mut telemetry = engine.take_telemetry();
    let recorder = telemetry
        .as_any_mut()
        .and_then(|a| a.downcast_mut::<Recorder>())
        .expect("installed telemetry is the recorder");

    let m = recorder.metrics();
    assert_eq!(m.counter_by_name(names::ROUNDS_TOTAL), Some(rounds as u64));
    assert_eq!(
        m.counter_by_name(names::AGGREGATIONS_TOTAL),
        Some(rounds as u64)
    );
    // 4 of 8 clients participate per synchronous round.
    assert_eq!(
        m.counter_by_name(names::CLIENT_UPDATES_TOTAL),
        Some(4 * rounds as u64)
    );
    // Every selected client both downloads and uploads the full model.
    let model_floats = m.counter_by_name(names::BROADCAST_FLOATS_TOTAL).unwrap();
    assert!(model_floats > 0);
    assert_eq!(
        m.counter_by_name(names::UPLOAD_FLOATS_TOTAL),
        Some(model_floats)
    );
    // Timed histograms saw one observation per client update / round.
    let compute = m.histogram_by_name(names::CLIENT_COMPUTE_SECONDS).unwrap();
    assert_eq!(compute.count(), 4 * rounds as u64);
    assert!(compute.sum() > 0.0);
    let wall = m.histogram_by_name(names::ROUND_WALL_SECONDS).unwrap();
    assert_eq!(wall.count(), rounds as u64);
    // Synchronous rounds have zero staleness.
    let staleness = m.histogram_by_name(names::STALENESS_ROUNDS).unwrap();
    assert_eq!(staleness.max(), 0.0);
    assert!(m.gauge_by_name(names::TEST_ACCURACY).unwrap() > 0.0);

    // The trace tree mirrors the tick → phase → client structure.
    let records = recorder.tracer().records();
    let ticks: Vec<_> = records.iter().filter(|s| s.name == "sync-rounds").collect();
    assert_eq!(ticks.len(), rounds);
    let dispatch = records
        .iter()
        .find(|s| s.name == "dispatch")
        .expect("dispatch phase span recorded");
    assert!(
        ticks.iter().any(|t| t.id == dispatch.parent),
        "dispatch must nest under a tick span"
    );
    let locals: Vec<_> = records
        .iter()
        .filter(|s| s.name == "local_update")
        .collect();
    assert_eq!(locals.len(), 4 * rounds);
    assert!(locals.iter().all(|s| s.client.is_some()));
    assert!(records.iter().any(|s| s.name == "aggregate"));
    assert!(records.iter().any(|s| s.name == "server_fold"));
    assert!(records.iter().any(|s| s.name == "round_end"));

    // Exports round-trip through the vendored serializer.
    let json = recorder.metrics_json();
    assert_eq!(
        json["counters"][names::ROUNDS_TOTAL].as_u64(),
        Some(rounds as u64)
    );
    assert!(json["histograms"][names::ROUND_WALL_SECONDS]["p50"]
        .as_f64()
        .is_some());
    for line in recorder.trace_json_lines().lines() {
        let span: SpanRecord = serde_json::from_str(line).expect("every trace line parses");
        assert!(span.end_ns >= span.start_ns);
    }
}

#[test]
fn recorder_observes_staleness_under_semi_async() {
    let (cfg, train, test, partition) = engine_parts(8, 12);
    // Half the fleet is far too slow for the deadline, so arrivals recur
    // with staleness ≥ 1.
    let fleet = SemiAsyncConfig::two_tier(8, 1.0, 0.5, 3.0, 3.5)
        .with_staleness(StalenessWeight::Polynomial { exponent: 0.5 });
    let mut engine = RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SemiAsync::new(fleet),
    )
    .unwrap()
    .with_telemetry(Box::new(Recorder::new()));
    engine.run_rounds(10).unwrap();

    let telemetry = engine.take_telemetry();
    let recorder = recorder_of(telemetry.as_ref());
    let staleness = recorder
        .metrics()
        .histogram_by_name(names::STALENESS_ROUNDS)
        .unwrap();
    assert!(staleness.count() > 0, "no arrivals were observed");
    assert!(
        staleness.max() >= 1.0,
        "straggler fleet produced no stale arrivals"
    );
    // The history's per-round staleness stats agree with the recorder's
    // ceiling (satellite: staleness surfaced in RoundRecord).
    let history_max = engine
        .history()
        .records
        .iter()
        .map(|r| r.staleness_max)
        .max()
        .unwrap();
    assert_eq!(history_max as f64, staleness.max());
    let ticks = recorder
        .tracer()
        .records()
        .iter()
        .filter(|s| s.name == "semi-async")
        .count();
    assert_eq!(ticks, 10);
}

#[test]
fn recorder_observes_buffered_async_ticks() {
    let (cfg, train, test, partition) = engine_parts(10, 13);
    let pool = AsyncConfig::two_tier(10, 4, 1.0, 0.3, 8.0, 1)
        .with_staleness(StalenessWeight::Polynomial { exponent: 0.5 });
    let mut engine = RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        BufferedAsync::new(pool),
    )
    .unwrap()
    .with_telemetry(Box::new(Recorder::new()));
    // Buffered ticks are arrival-driven: step until two aggregations land.
    let mut guard = 0;
    while engine.scheduler().updates_applied() < 2 {
        engine.step().unwrap();
        guard += 1;
        assert!(guard < 256, "buffered scheduler never aggregated");
    }

    let telemetry = engine.take_telemetry();
    let recorder = recorder_of(telemetry.as_ref());
    let m = recorder.metrics();
    assert!(m.counter_by_name(names::CLIENT_UPDATES_TOTAL).unwrap() > 0);
    assert!(m.counter_by_name(names::AGGREGATIONS_TOTAL).unwrap() >= 2);
    let records = recorder.tracer().records();
    assert!(
        records.iter().any(|s| s.name == "buffered-async"),
        "tick spans carry the scheduler label"
    );
    assert!(records.iter().any(|s| s.name == "arrival"));
}

#[test]
fn optimality_gap_gauge_is_opt_in_and_reported_per_round() {
    let rho = 0.3;
    let run = |gap: bool| {
        let (cfg, train, test, partition) = engine_parts(6, 14);
        let mut engine = RoundEngine::new(
            cfg,
            train,
            test,
            partition,
            FedAdmm::new(rho, ServerStepSize::Constant(1.0)),
            SyncRounds,
        )
        .unwrap()
        .with_telemetry(Box::new(Recorder::new()));
        if gap {
            engine = engine.with_optimality_gap(rho);
        }
        engine.run_rounds(2).unwrap();
        engine.take_telemetry()
    };

    let telemetry = run(true);
    let gap = recorder_of(telemetry.as_ref())
        .metrics()
        .gauge_by_name("optimality_gap")
        .expect("gap gauge registered dynamically");
    assert!(gap.is_finite() && gap >= 0.0);

    // Without `with_optimality_gap` the gauge never appears.
    let telemetry = run(false);
    assert_eq!(
        recorder_of(telemetry.as_ref())
            .metrics()
            .gauge_by_name("optimality_gap"),
        None
    );
}
