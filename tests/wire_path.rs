//! Wire-path integration tests.
//!
//! Three pins on the fused compression + privacy path:
//!
//! 1. **Bounded error** — the server's fused dequantize-accumulate fold
//!    agrees with the naive compress → decompress → aggregate reference up
//!    to float associativity, and both stay within the quantizer's
//!    worst-case error of the uncompressed fold (property-tested over bit
//!    widths, rounding modes and cohort shapes).
//! 2. **Determinism** — DP noise and stochastic rounding derive from
//!    `(seed, round, client)` streams, so private compressed runs are
//!    bit-reproducible and move with the engine seed.
//! 3. **Byte-identity off** — with the wire path disabled the engine is
//!    bit-identical to one that never heard of it (the golden digest in
//!    `tests/engine_parity.rs` pins the same property against a constant).

use fedadmm::prelude::*;
use fedadmm_core::engine::wire::decode_message;
use fedadmm_tensor::vecops::{self, DequantTerm};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn config(num_clients: usize, seed: u64) -> FedConfig {
    FedConfig {
        num_clients,
        participation: Participation::Fraction(0.5),
        local_epochs: 2,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    }
}

fn engine_with<A: Algorithm>(
    algorithm: A,
    seed: u64,
    wire: WirePathConfig,
) -> RoundEngine<A, SyncRounds> {
    let num_clients = 8;
    let (train, test) = SyntheticDataset::Mnist.generate(num_clients * 30, 120, seed);
    let partition = DataDistribution::Iid.partition(&train, num_clients, seed);
    RoundEngine::new(
        config(num_clients, seed),
        train,
        test,
        partition,
        algorithm,
        SyncRounds,
    )
    .unwrap()
    .with_wire_path(wire)
}

fn wire_message(client_id: usize, values: Vec<f32>) -> fedadmm_core::algorithms::ClientMessage {
    fedadmm_core::algorithms::ClientMessage {
        client_id,
        num_samples: 30,
        payload: vec![ParamVector::from_vec(values)],
        epochs_run: 1,
        samples_processed: 30,
        wire: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fused fold (one `dequant_axpy_fused` sweep over the coded
    /// cohort) must match the naive reference (decode every message, then
    /// fold dense) up to float associativity, and both must sit within
    /// `Σ_i |c_i|·max_error_i` of the fold over the *original* dense
    /// uploads — the wire path's correctness contract.
    #[test]
    fn fused_fold_matches_naive_reference_within_quantizer_bound(
        bits_idx in 0usize..3,
        stochastic in any::<bool>(),
        cohort in 1usize..10,
        dim in 2usize..80,
        seed in any::<u64>(),
    ) {
        let bits = [4u8, 8, 16][bits_idx];
        let quantizer = Quantizer::new(bits, stochastic);
        let path = WirePathConfig::enabled(quantizer).resolve().unwrap();
        let coeff = 1.0f32 / cohort as f32;
        let mut rng = SmallRng::seed_from_u64(seed);

        let mut reference = vec![0.0f32; dim];
        let mut bound = 0.0f32;
        let mut encoded = Vec::with_capacity(cohort);
        let mut codes = Vec::new();
        for c in 0..cohort {
            let values: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            vecops::axpy(coeff, &values, &mut reference);
            let lo = values.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            bound += coeff.abs() * quantizer.max_error(hi - lo);
            let mut msg = wire_message(c, values);
            path.encode(&mut msg, seed ^ (c as u64), &mut codes);
            encoded.push(msg);
        }

        // Naive reference: decode each message back to dense, fold densely.
        let mut naive = vec![0.0f32; dim];
        for msg in &encoded {
            let dense = decode_message(msg);
            vecops::axpy(coeff, dense.payload[0].as_slice(), &mut naive);
        }

        // Fused path: one sweep over the coded cohort, scale folded into
        // the per-message coefficient exactly as `fold_compressed` does.
        let terms: Vec<DequantTerm<'_>> = encoded
            .iter()
            .map(|msg| {
                let wire = msg.wire.as_ref().unwrap();
                let v = &wire.vectors[0];
                DequantTerm {
                    alpha: coeff * wire.scale,
                    min: v.min,
                    step: v.step,
                    codes: &v.codes,
                }
            })
            .collect();
        let mut fused = vec![0.0f32; dim];
        vecops::dequant_axpy_fused(&terms, &mut fused);

        for (f, n) in fused.iter().zip(naive.iter()) {
            prop_assert!(
                (f - n).abs() <= 1e-4 * (1.0 + n.abs()),
                "fused {f} vs naive {n}: more than float-associativity apart"
            );
        }
        let slack = bound * 1.001 + 1e-5;
        for (f, r) in fused.iter().zip(reference.iter()) {
            prop_assert!(
                (f - r).abs() <= slack,
                "fused {f} vs dense reference {r} exceeds the quantizer bound {slack}"
            );
        }
    }
}

#[test]
fn private_compressed_runs_are_deterministic_and_move_with_the_seed() {
    let wire = || {
        WirePathConfig::enabled(Quantizer::new(8, true))
            .with_guard(Arc::new(GaussianMechanism::new(10.0, 0.01)))
    };
    let mut a = engine_with(FedAdmm::paper_default(), 19, wire());
    let mut b = engine_with(FedAdmm::paper_default(), 19, wire());
    a.run_rounds(3).unwrap();
    b.run_rounds(3).unwrap();
    assert_eq!(
        a.global_model(),
        b.global_model(),
        "same seed + same wire config must be bit-identical"
    );
    let mut ha = a.history().clone();
    let mut hb = b.history().clone();
    for r in ha.records.iter_mut().chain(hb.records.iter_mut()) {
        r.elapsed_ms = 0;
    }
    assert_eq!(ha, hb);

    let mut c = engine_with(FedAdmm::paper_default(), 20, wire());
    c.run_rounds(3).unwrap();
    assert_ne!(
        a.global_model(),
        c.global_model(),
        "noise and rounding streams must move with the engine seed"
    );
}

#[test]
fn disabled_wire_path_is_byte_identical_and_enabled_is_not() {
    let mut off_a = engine_with(FedAdmm::paper_default(), 33, WirePathConfig::disabled());
    let mut off_b = engine_with(FedAdmm::paper_default(), 33, WirePathConfig::disabled());
    off_a.run_rounds(4).unwrap();
    off_b.run_rounds(4).unwrap();
    assert_eq!(off_a.global_model(), off_b.global_model());

    // Only meaningful when the environment is not forcing the path on: the
    // default resolution must coincide with the explicit `disabled()`.
    if std::env::var_os("FEDADMM_WIRE_PATH").is_none() {
        let mut default = engine_with(FedAdmm::paper_default(), 33, WirePathConfig::default());
        default.run_rounds(4).unwrap();
        assert_eq!(
            off_a.global_model(),
            default.global_model(),
            "wire path must be off by default"
        );
    }

    let mut on = engine_with(
        FedAdmm::paper_default(),
        33,
        WirePathConfig::enabled(Quantizer::new(8, true)),
    );
    on.run_rounds(4).unwrap();
    assert_ne!(
        off_a.global_model(),
        on.global_model(),
        "8-bit quantization must perturb the trajectory"
    );

    // Dense runs report dense bytes; coded runs report true wire bytes,
    // ~4× smaller at 8 bits (plus the tiny min/step/scale header).
    for r in &off_a.history().records {
        assert_eq!(r.wire_bytes, 4 * r.upload_floats);
        assert_eq!(r.dense_wire_ratio, 1.0);
    }
    for r in &on.history().records {
        assert!(r.wire_bytes > 0 && r.wire_bytes < 4 * r.upload_floats);
        assert!(
            r.dense_wire_ratio > 3.5 && r.dense_wire_ratio < 4.5,
            "8-bit ratio was {}",
            r.dense_wire_ratio
        );
    }
    assert!(on.cumulative_wire_bytes() > 0);
    assert!(on.cumulative_wire_bytes() * 3 < off_a.cumulative_wire_bytes());
}

#[test]
fn compressed_private_run_still_learns() {
    let wire = WirePathConfig::enabled(Quantizer::new(8, true))
        .with_guard(Arc::new(GaussianMechanism::new(20.0, 1e-3)));
    let mut engine = engine_with(FedAdmm::paper_default(), 41, wire);
    let (_, acc0) = engine.evaluate_global().unwrap();
    engine.run_rounds(8).unwrap();
    let best = engine.history().best_accuracy();
    assert!(
        best > acc0 + 0.2,
        "compressed+private FedADMM failed to learn: {acc0} → {best}"
    );
}

#[test]
fn multi_vector_uploads_take_the_decode_fallback_and_still_work() {
    // SCAFFOLD uploads two vectors per message; the fused single-sweep fold
    // requires single-vector wire payloads, so the engine must fall back to
    // the decode reference — correctness over speed, never a panic.
    let mut engine = engine_with(
        Scaffold::new(),
        23,
        WirePathConfig::enabled(Quantizer::new(8, true)),
    );
    let (_, acc0) = engine.evaluate_global().unwrap();
    engine.run_rounds(6).unwrap();
    for r in &engine.history().records {
        assert!(r.wire_bytes > 0 && r.wire_bytes < 4 * r.upload_floats);
    }
    let best = engine.history().best_accuracy();
    assert!(
        best > acc0 + 0.15,
        "compressed SCAFFOLD failed to learn: {acc0} → {best}"
    );
}
