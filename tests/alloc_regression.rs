//! Pins the zero-allocation guarantee of the training hot path.
//!
//! A counting global allocator measures the *marginal* allocation cost of
//! extra SGD epochs on a warmed [`fedadmm_core::trainer::local_sgd_cached`]
//! worker (cached network + `TrainScratch` with its activation arena).
//! Steady-state mini-batch steps must perform **zero** heap allocations:
//! every buffer — gathered batch, input tensor, per-layer activations and
//! gradients, loss gradient, flat gradient — is recycled across steps and
//! epochs. A second check bounds a whole evaluation pass to O(1)
//! allocations regardless of how many 256-sample chunks it spans.
//!
//! This file intentionally holds a single `#[test]` so no sibling test
//! thread pollutes the allocation counter mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fedadmm_core::trainer::{evaluate, local_sgd_cached, LocalEnv, NetCache, TrainScratch};
use fedadmm_data::batching::BatchSize;
use fedadmm_data::synthetic::SyntheticDataset;
use fedadmm_nn::models::ModelSpec;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_sgd_step_allocates_nothing() {
    let (train, _) = SyntheticDataset::Mnist.generate(96, 256, 5);
    let indices: Vec<usize> = (0..96).collect();
    let model = ModelSpec::Logistic {
        input_dim: train.feature_dim(),
        num_classes: 10,
    };
    let init = vec![0.01f32; model.num_params()];
    let env = |epochs: usize| LocalEnv {
        dataset: &train,
        indices: &indices,
        model,
        epochs,
        batch_size: BatchSize::Size(16),
        learning_rate: 0.1,
        seed: 77,
        // 96 samples / B=16 → six full batches per epoch, so every epoch
        // revisits exactly the shapes the warm-up pass grew buffers for.
    };

    let mut cache = NetCache::default();
    let mut scratch = TrainScratch::default();
    // Warm-up: grows the network cache, the gather/ping-pong buffers and
    // every arena slot to their steady-state capacities.
    local_sgd_cached(&env(1), &init, &mut cache, &mut scratch, |_, _| {}).unwrap();

    let before_short = alloc_count();
    local_sgd_cached(&env(2), &init, &mut cache, &mut scratch, |_, _| {}).unwrap();
    let short_run = alloc_count() - before_short;

    let extra_epochs = 6u64;
    let before_long = alloc_count();
    local_sgd_cached(
        &env(2 + extra_epochs as usize),
        &init,
        &mut cache,
        &mut scratch,
        |_, _| {},
    )
    .unwrap();
    let long_run = alloc_count() - before_long;

    // Both runs share the same fixed per-call cost (cloning `init` into the
    // working parameter vector and moving it into the result); the six
    // additional epochs — 36 additional SGD steps — must add zero
    // allocations on top of it.
    assert_eq!(
        long_run,
        short_run,
        "steady-state SGD steps must not allocate: {extra_epochs} extra epochs \
         cost {} allocations",
        long_run as i64 - short_run as i64
    );

    // An evaluation pass reuses one arena and one gather buffer across its
    // 256-sample chunks, so the only per-chunk allocations left are the
    // vendored rayon shim's partitioning scaffolding (the eval GEMM sits
    // above the kernels' parallel threshold). Bound that marginal cost
    // tightly: a regression back to per-chunk tensor allocation costs 10+
    // calls per chunk and trips this immediately.
    let (eval_set, _) = SyntheticDataset::Mnist.generate(1024, 10, 6);
    let params = vec![0.0f32; model.num_params()];
    evaluate(model, &params, &eval_set, 256).unwrap(); // warm the allocator pools
    let before_one = alloc_count();
    evaluate(model, &params, &eval_set, 256).unwrap();
    let one_chunk = alloc_count() - before_one;
    let before_four = alloc_count();
    evaluate(model, &params, &eval_set, 1024).unwrap();
    let four_chunks = alloc_count() - before_four;
    let extra_chunks = 3;
    assert!(
        four_chunks <= one_chunk + extra_chunks * 7,
        "evaluation allocations grew too fast with chunk count: \
         1 chunk → {one_chunk}, 4 chunks → {four_chunks}"
    );
}
