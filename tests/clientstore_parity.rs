//! Client-state store backend parity.
//!
//! The store abstraction must be invisible to the simulation semantics:
//! under the default single-pass aggregation, a seeded run is *bit-exact*
//! across the dense in-memory backend, the lazily-materialized sharded
//! backend, and the spill-to-disk backend (even with a budget tiny enough
//! to force evictions every round). Per-client state — dual variables,
//! local models, selection counters — must survive spill round trips
//! unchanged.
//!
//! Hierarchical aggregation is the one deliberate departure from
//! bit-exactness (float addition is not associative), so it is compared
//! under a tolerance instead.

use fedadmm::prelude::*;
use fedadmm_core::engine::RoundEngine;
use proptest::prelude::*;

fn config(num_clients: usize, seed: u64) -> FedConfig {
    FedConfig {
        num_clients,
        participation: Participation::Fraction(0.25),
        local_epochs: 2,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    }
}

/// One client's persistent state reduced to raw bit patterns, so equality
/// means bit-exact round trips (not merely approximate ones).
type StateBits = (usize, usize, Vec<u32>, Vec<u32>, Vec<u32>);

fn state_bits(state: &ClientState) -> StateBits {
    let bits = |p: &ParamVector| -> Vec<u32> { p.as_slice().iter().map(|v| v.to_bits()).collect() };
    (
        state.id,
        state.times_selected,
        bits(&state.local_model),
        bits(&state.dual),
        bits(&state.control),
    )
}

/// Runs `rounds` FedADMM rounds over a non-IID split with the given store
/// backend, returning the history (timing zeroed), the global model bits
/// and every client's state bits.
fn run_with_store(
    store: &StoreConfig,
    seed: u64,
    num_clients: usize,
    rounds: usize,
) -> (RunHistory, Vec<u32>, Vec<StateBits>, StoreStats) {
    let cfg = config(num_clients, seed);
    let (train, test) = SyntheticDataset::Mnist.generate(num_clients * 24, 90, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, num_clients, seed);
    let mut engine = RoundEngine::new_with_store(
        cfg,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SyncRounds,
        store,
    )
    .unwrap();
    engine.run_rounds(rounds).unwrap();
    let global: Vec<u32> = engine
        .global_model()
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let mut states = Vec::new();
    engine
        .store_mut()
        .for_each_state(&mut |state| {
            states.push(state_bits(state));
            Ok(())
        })
        .unwrap();
    let stats = engine.store().stats();
    let mut history = engine.into_history();
    for record in history.records.iter_mut() {
        record.elapsed_ms = 0;
    }
    (history, global, states, stats)
}

#[test]
fn sharded_store_matches_in_memory_bit_exactly() {
    let (h_mem, g_mem, s_mem, _) = run_with_store(&StoreConfig::InMemory, 11, 16, 4);
    let (h_sh, g_sh, s_sh, stats) =
        run_with_store(&StoreConfig::Sharded { num_shards: 5 }, 11, 16, 4);
    assert_eq!(h_mem, h_sh);
    assert_eq!(g_mem, g_sh);
    assert_eq!(s_mem, s_sh);
    // The sharded backend must have worked lazily, not densely.
    assert!(stats.materializations > 0);
    assert!((stats.materializations as usize) <= 16);
}

#[test]
fn spill_store_matches_in_memory_bit_exactly_even_under_pressure() {
    let (h_mem, g_mem, s_mem, _) = run_with_store(&StoreConfig::InMemory, 12, 16, 4);
    // A ~100 KB budget holds ~3 clients of a 7850-parameter model: every
    // round must evict, spill and reload shards.
    let spill = StoreConfig::Spill {
        num_shards: 8,
        budget_bytes: 100 * 1024,
        dir: None,
    };
    let (h_sp, g_sp, s_sp, stats) = run_with_store(&spill, 12, 16, 4);
    assert_eq!(h_mem, h_sp);
    assert_eq!(g_mem, g_sp);
    assert_eq!(s_mem, s_sp);
    assert!(stats.evictions > 0, "the tiny budget must force evictions");
    assert!(
        stats.spill_writes > 0 && stats.spill_loads > 0,
        "trained state must round-trip through disk: {stats:?}"
    );
}

#[test]
fn spill_store_respects_budget_between_rounds() {
    let budget = 100 * 1024;
    let spill = StoreConfig::Spill {
        num_shards: 8,
        budget_bytes: budget,
        dir: None,
    };
    let cfg = config(16, 13);
    let (train, test) = SyntheticDataset::Mnist.generate(16 * 24, 90, 13);
    let partition = DataDistribution::NonIidShards.partition(&train, 16, 13);
    let mut engine = RoundEngine::new_with_store(
        cfg,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SyncRounds,
        &spill,
    )
    .unwrap();
    for _ in 0..3 {
        engine.run_round().unwrap();
        // The budget is enforced between borrows; one shard of slack covers
        // the shard that must stay resident for the cohort in flight.
        let resident = engine.store().resident_bytes();
        let per_shard_slack = 3 * budget;
        assert!(
            resident <= per_shard_slack,
            "resident {resident} bytes far exceeds budget {budget}"
        );
    }
}

#[test]
fn hierarchical_aggregation_tracks_single_pass_within_tolerance() {
    let run = |mode: AggregationMode| {
        let cfg = config(16, 14);
        let (train, test) = SyntheticDataset::Mnist.generate(16 * 24, 90, 14);
        let partition = DataDistribution::NonIidShards.partition(&train, 16, 14);
        let mut engine = RoundEngine::new_with_store(
            cfg,
            train,
            test,
            partition,
            FedAdmm::paper_default(),
            SyncRounds,
            &StoreConfig::Sharded { num_shards: 4 },
        )
        .unwrap()
        .with_aggregation(mode);
        engine.run_rounds(3).unwrap();
        engine.global_model().clone()
    };
    let single = run(AggregationMode::SinglePass);
    let tree = run(AggregationMode::Hierarchical);
    // Same mathematical sum, different association: last-ulp differences
    // only.
    let rel = single.dist(&tree) / single.norm().max(1e-12);
    assert!(rel < 1e-4, "relative deviation {rel}");
    // And not trivially equal-because-unused: the runs trained.
    assert!(single.norm() > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed ⇒ identical `RunHistory` and bit-identical client state,
    /// for arbitrary shard counts and (small) spill budgets.
    #[test]
    fn any_backend_round_trips_client_state_bit_exactly(
        seed in 0u64..64,
        num_shards in 1usize..9,
        budget_kb in 60u64..400,
    ) {
        let (h_mem, g_mem, s_mem, _) = run_with_store(&StoreConfig::InMemory, seed, 12, 2);
        let sharded = StoreConfig::Sharded { num_shards };
        let (h_sh, g_sh, s_sh, _) = run_with_store(&sharded, seed, 12, 2);
        prop_assert_eq!(&h_mem, &h_sh);
        prop_assert_eq!(&g_mem, &g_sh);
        prop_assert_eq!(&s_mem, &s_sh);
        let spill = StoreConfig::Spill {
            num_shards,
            budget_bytes: budget_kb * 1024,
            dir: None,
        };
        let (h_sp, g_sp, s_sp, _) = run_with_store(&spill, seed, 12, 2);
        prop_assert_eq!(&h_mem, &h_sp);
        prop_assert_eq!(&g_mem, &g_sp);
        prop_assert_eq!(&s_mem, &s_sp);
    }
}
