//! Bounded-memory scale smoke test (the `scale-smoke` CI job).
//!
//! 100 000 clients at 1% participation over a label-skewed shared dataset,
//! running on the spill-to-disk store with a 64 MB client-state budget. A
//! dense `Vec<ClientState>` for this population would need ~9.4 GB (100k ×
//! three ℝ^7850 vectors); the test asserts the whole process stays under
//! 2 GiB peak RSS, which is only possible if lazy materialization and
//! budget-driven eviction actually work.
//!
//! `#[ignore]`d by default — run with
//! `cargo test --release --test scale_smoke -- --ignored`.

use fedadmm::prelude::*;
use fedadmm::telemetry::{names, peak_rss_bytes};
use fedadmm_core::engine::RoundEngine;
use fedadmm_data::partition::Partition;

const NUM_CLIENTS: usize = 100_000;
const SAMPLES_PER_CLIENT: usize = 20;
const BUDGET_BYTES: u64 = 64 * 1024 * 1024;
const RSS_LIMIT_BYTES: u64 = 2 * 1024 * 1024 * 1024;

/// Label-sorted shared-index partition: clients own overlapping windows of
/// the label-ordered sample list, so each sees a skewed (non-IID) slice
/// without needing 2M distinct samples.
fn shared_non_iid_partition(train: &Dataset, num_clients: usize) -> Partition {
    let mut order: Vec<usize> = (0..train.len()).collect();
    order.sort_by_key(|&i| train.label(i));
    let span = train.len() - SAMPLES_PER_CLIENT;
    let clients: Vec<Vec<usize>> = (0..num_clients)
        .map(|c| {
            let start = (c * 17) % span;
            order[start..start + SAMPLES_PER_CLIENT].to_vec()
        })
        .collect();
    Partition::new(clients)
}

#[test]
#[ignore = "scale smoke: ~100k clients, run in release via the scale-smoke CI job"]
fn hundred_thousand_clients_stay_under_memory_budget() {
    let config = FedConfig {
        num_clients: NUM_CLIENTS,
        participation: Participation::Fraction(0.01),
        local_epochs: 1,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(20),
        local_learning_rate: 0.05,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed: 2024,
        eval_subset: usize::MAX,
    };
    let (train, test) = SyntheticDataset::Mnist.generate(2_000, 400, 2024);
    let partition = shared_non_iid_partition(&train, NUM_CLIENTS);

    let store = StoreConfig::Spill {
        num_shards: 512,
        budget_bytes: BUDGET_BYTES,
        dir: None,
    };
    let mut engine = RoundEngine::new_with_store(
        config,
        train,
        test,
        partition,
        FedAdmm::paper_default(),
        SyncRounds,
        &store,
    )
    .unwrap()
    .with_aggregation(AggregationMode::Hierarchical)
    .eval_subset(0.25)
    .with_telemetry(Box::new(Recorder::new()));

    let records = engine.run_rounds(2).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].num_selected, 1_000);

    // The store must have worked lazily and under pressure: ~1% of the
    // population materialized per round, with the 64 MB budget forcing
    // trained shards out to disk between rounds.
    let stats = engine.store().stats();
    assert!(
        stats.materializations >= 1_000,
        "selected clients materialize on demand: {stats:?}"
    );
    assert!(
        (stats.materializations as usize) < NUM_CLIENTS / 10,
        "the inactive tail must stay implicit: {stats:?}"
    );
    assert!(
        stats.spill_writes > 0,
        "a 64 MB budget cannot hold a 1 000-client cohort resident: {stats:?}"
    );

    // Telemetry probe: the resident-bytes gauge is wired through and the
    // whole process stayed far below the dense footprint (~9.4 GB).
    let telemetry = engine.take_telemetry();
    let recorder = telemetry
        .as_any()
        .and_then(|a| a.downcast_ref::<Recorder>())
        .expect("recorder installed above");
    let resident = recorder
        .metrics()
        .gauge_by_name(names::STORE_RESIDENT_BYTES)
        .expect("store gauge recorded at round close");
    assert!(resident > 0.0);
    let peak = peak_rss_bytes().expect("peak RSS probe available on linux");
    assert!(
        peak < RSS_LIMIT_BYTES,
        "peak RSS {} MB exceeds the {} MB bound",
        peak / (1024 * 1024),
        RSS_LIMIT_BYTES / (1024 * 1024)
    );
}
