//! Integration tests for the system-heterogeneity substrate composed with
//! the federated simulation: wall-clock accounting, straggler policies and
//! availability-driven participation.

use fedadmm::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const MODEL_DIM: usize = 7_850; // logistic model on 784 features, 10 classes

fn tiered_fleet(num_clients: usize) -> DevicePopulation {
    DevicePopulation::tiered(
        num_clients,
        &[
            (DeviceClass::HighEnd, 0.3),
            (DeviceClass::MidRange, 0.4),
            (DeviceClass::LowEnd, 0.3),
        ],
        17,
    )
}

/// Replays a finished simulation's history as wall-clock time: every round,
/// each selected client downloads the model, processes its recorded share of
/// the samples, and uploads its message.
fn replay_wall_clock(
    history: &RunHistory,
    devices: &DevicePopulation,
    policy: StragglerPolicy,
) -> WallClockTrace {
    let network = NetworkModel::default();
    let mut trace = WallClockTrace::new();
    let mut rng = SmallRng::seed_from_u64(3);
    for record in &history.records {
        // The history stores per-round totals; spread them uniformly over the
        // selected clients and draw which concrete devices took part.
        let per_client_samples = record.samples_processed / record.num_selected.max(1);
        let per_client_upload = record.upload_floats / record.num_selected.max(1);
        let mut ids: Vec<usize> = (0..devices.len()).collect();
        use rand::seq::SliceRandom;
        ids.shuffle(&mut rng);
        ids.truncate(record.num_selected.max(1));
        let work: Vec<ClientRoundWork> = ids
            .iter()
            .map(|&c| ClientRoundWork {
                client_id: c,
                samples_processed: per_client_samples,
                download_floats: MODEL_DIM,
                upload_floats: per_client_upload,
            })
            .collect();
        trace.push(&RoundTiming::compute(&work, devices, &network, policy));
    }
    trace
}

fn run_history(system_heterogeneity: bool, seed: u64) -> RunHistory {
    let config = FedConfig {
        num_clients: 20,
        participation: Participation::Fraction(0.25),
        local_epochs: 5,
        system_heterogeneity,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed,
        eval_subset: 100,
    };
    let (train, test) = SyntheticDataset::Mnist.generate(2000, 200, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, 20, seed);
    let mut sim = RoundEngine::new(
        config,
        train,
        test,
        partition,
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
        SyncRounds,
    )
    .unwrap();
    sim.run_rounds(10).unwrap();
    sim.into_history()
}

#[test]
fn variable_local_work_reduces_both_computation_and_wall_clock() {
    let fixed = run_history(false, 1);
    let variable = run_history(true, 1);
    // The paper: FedADMM with system heterogeneity performs ~50% of the
    // local computation of the fixed-E protocol (E[U{1..E}] = (E+1)/2).
    let fixed_epochs = fixed.total_local_epochs() as f64;
    let variable_epochs = variable.total_local_epochs() as f64;
    assert!(
        variable_epochs < 0.8 * fixed_epochs,
        "variable work should cut local computation: {variable_epochs} vs {fixed_epochs}"
    );
    // Upload cost per round is identical (same number of d-vectors).
    assert_eq!(fixed.total_upload_floats(), variable.total_upload_floats());

    // And on a heterogeneous fleet the saved computation translates into
    // shorter synchronous rounds.
    let devices = tiered_fleet(20);
    let t_fixed = replay_wall_clock(&fixed, &devices, StragglerPolicy::WaitForAll);
    let t_variable = replay_wall_clock(&variable, &devices, StragglerPolicy::WaitForAll);
    assert!(
        t_variable.total_seconds() < t_fixed.total_seconds(),
        "variable work should be faster in wall-clock: {} vs {}",
        t_variable.total_seconds(),
        t_fixed.total_seconds()
    );
}

#[test]
fn deadline_policy_trades_dropped_updates_for_time() {
    let history = run_history(false, 2);
    let devices = tiered_fleet(20);
    let wait = replay_wall_clock(&history, &devices, StragglerPolicy::WaitForAll);
    // A deadline tight enough to cut off the slow tier.
    let deadline = replay_wall_clock(
        &history,
        &devices,
        StragglerPolicy::Deadline {
            seconds: wait.total_seconds() / (2.0 * wait.len() as f64),
        },
    );
    assert!(deadline.total_seconds() < wait.total_seconds());
    assert!(
        deadline.total_dropped() > 0,
        "such a tight deadline must drop someone"
    );
    assert_eq!(wait.total_dropped(), 0);
    assert!(deadline.total_upload_bytes() < wait.total_upload_bytes());
}

#[test]
fn scaffold_pays_double_upload_time_on_the_same_fleet() {
    // Upload-cost comparison of Section III-B in seconds: replaying the same
    // round with 2d-float uploads takes strictly longer on every policy.
    let devices = tiered_fleet(10);
    let network = NetworkModel::ideal();
    let ids: Vec<usize> = (0..10).collect();
    let make_work = |upload: usize| -> Vec<ClientRoundWork> {
        ids.iter()
            .map(|&c| ClientRoundWork {
                client_id: c,
                samples_processed: 500,
                download_floats: MODEL_DIM,
                upload_floats: upload,
            })
            .collect()
    };
    let fedadmm = RoundTiming::compute(
        &make_work(MODEL_DIM),
        &devices,
        &network,
        StragglerPolicy::WaitForAll,
    );
    let scaffold = RoundTiming::compute(
        &make_work(2 * MODEL_DIM),
        &devices,
        &network,
        StragglerPolicy::WaitForAll,
    );
    assert!(scaffold.round_seconds > fedadmm.round_seconds);
    assert_eq!(scaffold.upload_bytes, 2 * fedadmm.upload_bytes);
}

#[test]
fn availability_driven_participation_composes_with_the_simulation() {
    // Drive client selection from a Markov availability process: selected =
    // available ∩ (uniform sample). The run must still improve and every
    // client must eventually participate.
    let m = 16;
    let config = FedConfig {
        num_clients: m,
        participation: Participation::Fraction(0.5),
        local_epochs: 2,
        system_heterogeneity: true,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed: 9,
        eval_subset: usize::MAX,
    };
    let (train, test) = SyntheticDataset::Mnist.generate(1600, 200, 9);
    let partition = DataDistribution::NonIidShards.partition(&train, m, 9);
    let mut sim = RoundEngine::new(
        config,
        train,
        test,
        partition,
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
        SyncRounds,
    )
    .unwrap();

    let mut availability = AvailabilityState::new(
        AvailabilityModel::Markov {
            p_fail: 0.3,
            p_recover: 0.4,
        },
        m,
    );
    let mut avail_rng = SmallRng::seed_from_u64(77);
    let (_, acc0) = sim.evaluate_global().unwrap();
    for _ in 0..30 {
        let available = availability.step(&mut avail_rng);
        // Clients unavailable this round get probability 0; at least one
        // available client is always selected.
        let mut probs = vec![0.0f64; m];
        for &a in &available {
            probs[a] = 0.6;
        }
        if available.is_empty() {
            probs[0] = 1.0;
        }
        sim = sim.with_selector(Box::new(fedadmm::core::selection::FixedProbabilities::new(
            probs,
        )));
        sim.run_round().unwrap();
    }
    let report = DriftReport::compute(sim.clients(), sim.global_model());
    assert!(
        report.clients_ever_selected >= m - 2,
        "bursty availability still covers the fleet"
    );
    assert!(
        sim.history().best_accuracy() > acc0 + 0.3,
        "availability-driven run failed to learn: {} → {}",
        acc0,
        sim.history().best_accuracy()
    );
}
