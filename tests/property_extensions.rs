//! Property-based tests (proptest) for the extension crates and the new
//! core modules: invariants that must hold for *arbitrary* inputs, not just
//! the hand-picked cases of the unit tests.

use fedadmm::core::quadratic::{QuadraticConfig, QuadraticProblem};
use fedadmm::core::schedule::Schedule;
use fedadmm::core::theory::{min_rho, theorem1_constants};
use fedadmm::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ------------------------------------------------------------------
    // Differential privacy mechanism.
    // ------------------------------------------------------------------

    /// Clipping never increases the norm, never changes the direction, and
    /// is idempotent.
    #[test]
    fn clipping_is_a_contraction_and_idempotent(
        values in proptest::collection::vec(-50.0f32..50.0, 1..64),
        clip in 0.1f32..20.0,
    ) {
        let mech = GaussianMechanism::new(clip, 0.0);
        let mut clipped = values.clone();
        mech.clip(&mut clipped);
        let norm = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm(&clipped) <= clip * 1.0001);
        prop_assert!(norm(&clipped) <= norm(&values) * 1.0001);
        // Idempotent: clipping twice changes nothing further.
        let mut twice = clipped.clone();
        mech.clip(&mut twice);
        for (a, b) in clipped.iter().zip(twice.iter()) {
            prop_assert!((a - b).abs() <= 1e-6);
        }
        // Direction preserved: the sign pattern never flips.
        for (orig, new) in values.iter().zip(clipped.iter()) {
            prop_assert!(orig.signum() == new.signum() || *new == 0.0 || *orig == 0.0);
        }
    }

    /// The zCDP accountant is additive: accounting T₁ then T₂ rounds equals
    /// accounting T₁ + T₂ rounds in one go.
    #[test]
    fn privacy_accounting_is_additive(
        sigma in 0.3f64..5.0,
        q in 0.001f64..1.0,
        t1 in 1usize..500,
        t2 in 1usize..500,
    ) {
        let mut split = PrivacyAccountant::new(sigma, q, 1e-5);
        split.step(t1);
        split.step(t2);
        let mut joint = PrivacyAccountant::new(sigma, q, 1e-5);
        joint.step(t1 + t2);
        prop_assert!((split.spent().rho_zcdp - joint.spent().rho_zcdp).abs() < 1e-12);
        prop_assert!((split.spent().epsilon - joint.spent().epsilon).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Secure aggregation.
    // ------------------------------------------------------------------

    /// For any set of participants and updates, the masks cancel in the sum.
    #[test]
    fn secure_aggregation_masks_always_cancel(
        seed in any::<u64>(),
        num_participants in 1usize..8,
        dim in 1usize..32,
        scale in 0.01f32..1.0,
    ) {
        let participants: Vec<usize> = (0..num_participants).map(|i| i * 3 + 1).collect();
        let agg = SecureAggregator::new(seed, &participants, dim);
        let updates: Vec<(usize, Vec<f32>)> = participants
            .iter()
            .map(|&c| (c, (0..dim).map(|j| scale * ((c + j) as f32).sin()).collect()))
            .collect();
        let masked = agg.masked_sum(&updates);
        let mut raw = vec![0.0f32; dim];
        for (_, u) in &updates {
            for (r, v) in raw.iter_mut().zip(u.iter()) {
                *r += v;
            }
        }
        for (m, r) in masked.iter().zip(raw.iter()) {
            // Masks are O(num_participants); allow generous f32 cancellation error.
            prop_assert!((m - r).abs() < 1e-3 * (num_participants as f32).max(1.0));
        }
    }

    // ------------------------------------------------------------------
    // Hyperparameter schedules.
    // ------------------------------------------------------------------

    /// A step schedule always evaluates to one of its declared values, and
    /// is piecewise constant between boundaries.
    #[test]
    fn step_schedule_only_takes_declared_values(
        initial in 0.001f32..10.0,
        b1 in 1usize..50,
        gap in 1usize..50,
        v1 in 0.001f32..10.0,
        v2 in 0.001f32..10.0,
        probe in 0usize..200,
    ) {
        let b2 = b1 + gap;
        let s = Schedule::Step { initial, boundaries: vec![(b1, v1), (b2, v2)] };
        let value = s.value_at(probe);
        prop_assert!(value == initial || value == v1 || value == v2);
        let expected = if probe >= b2 { v2 } else if probe >= b1 { v1 } else { initial };
        prop_assert_eq!(value, expected);
    }

    /// Decay schedules are non-increasing when the factor is ≤ 1.
    #[test]
    fn decay_schedule_is_monotone_non_increasing(
        initial in 0.01f32..10.0,
        factor in 0.1f32..1.0,
        every in 1usize..20,
        t in 0usize..100,
    ) {
        let s = Schedule::Decay { initial, factor, every };
        prop_assert!(s.value_at(t + 1) <= s.value_at(t) + 1e-9);
        prop_assert!(s.value_at(t) <= initial);
        // Deep decays may underflow f32 to exactly 0, but never go negative.
        prop_assert!(s.value_at(t) >= 0.0);
    }

    // ------------------------------------------------------------------
    // Theory module.
    // ------------------------------------------------------------------

    /// Whenever ρ exceeds the admissibility threshold, the Theorem 1
    /// constants exist and are positive, and c1 grows with p_min.
    #[test]
    fn theorem_constants_are_positive_above_threshold(
        l in 0.05f64..20.0,
        margin in 1.01f64..10.0,
        p_min in 0.01f64..1.0,
    ) {
        let rho = min_rho(l) * margin;
        let c = theorem1_constants(rho, l, p_min);
        prop_assert!(c.is_some());
        let c = c.unwrap();
        prop_assert!(c.c1 > 0.0 && c.c2 > 0.0 && c.c3 > 0.0);
        let larger = theorem1_constants(rho, l, (p_min * 1.5).min(1.0)).unwrap();
        prop_assert!(larger.c1 >= c.c1);
    }

    // ------------------------------------------------------------------
    // Quadratic substrate.
    // ------------------------------------------------------------------

    /// The closed-form ADMM minimiser really is a stationary point of the
    /// augmented Lagrangian, for arbitrary duals, anchors and ρ.
    #[test]
    fn quadratic_admm_minimizer_is_stationary(
        seed in any::<u64>(),
        rho in 0.1f64..10.0,
        anchor in -2.0f64..2.0,
        dual_scale in -1.0f64..1.0,
    ) {
        let p = QuadraticProblem::random(
            QuadraticConfig { num_clients: 1, dim: 4, eig_min: 0.5, eig_max: 2.0, heterogeneity: 1.0 },
            seed,
        );
        let c = &p.clients()[0];
        let theta = vec![anchor; 4];
        let dual = vec![dual_scale; 4];
        let w = c.admm_minimizer(&dual, &theta, rho);
        let mut g = c.grad(&w);
        for j in 0..4 {
            g[j] += dual[j] + rho * (w[j] - theta[j]);
        }
        let gnorm: f64 = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(gnorm < 1e-7, "residual {}", gnorm);
    }

    /// The global optimum of a random quadratic problem is stationary for
    /// the sum of the client losses.
    #[test]
    fn quadratic_global_optimum_is_stationary(
        seed in any::<u64>(),
        clients in 2usize..10,
        heterogeneity in 0.1f64..3.0,
    ) {
        let p = QuadraticProblem::random(
            QuadraticConfig { num_clients: clients, dim: 5, eig_min: 0.5, eig_max: 2.0, heterogeneity },
            seed,
        );
        let w_star = p.global_optimum();
        prop_assert!(p.stationarity_residual(&w_star) < 1e-7);
    }

    // ------------------------------------------------------------------
    // System models.
    // ------------------------------------------------------------------

    /// Round time is monotone: doing more work, or uploading more, can never
    /// make the synchronous round finish earlier.
    #[test]
    fn round_time_is_monotone_in_work_and_payload(
        samples in 1usize..5000,
        extra_samples in 0usize..5000,
        floats in 0usize..2_000_000,
        extra_floats in 0usize..2_000_000,
    ) {
        let devices = DevicePopulation::tiered(
            4,
            &[(DeviceClass::HighEnd, 0.5), (DeviceClass::LowEnd, 0.5)],
            1,
        );
        let network = NetworkModel::default();
        let work = |s: usize, f: usize| {
            vec![
                ClientRoundWork { client_id: 0, samples_processed: s, download_floats: f, upload_floats: f },
                ClientRoundWork { client_id: 3, samples_processed: s, download_floats: f, upload_floats: f },
            ]
        };
        let base = RoundTiming::compute(&work(samples, floats), &devices, &network, StragglerPolicy::WaitForAll);
        let heavier = RoundTiming::compute(
            &work(samples + extra_samples, floats + extra_floats),
            &devices,
            &network,
            StragglerPolicy::WaitForAll,
        );
        prop_assert!(heavier.round_seconds >= base.round_seconds - 1e-12);
    }

    /// A deadline never *increases* the round time relative to waiting for
    /// all clients, and completion plus drops always partition the round.
    #[test]
    fn deadline_policy_never_slows_a_round_down(
        samples in 1usize..3000,
        deadline in 0.5f64..500.0,
    ) {
        let devices = DevicePopulation::tiered(
            6,
            &[(DeviceClass::EdgeGateway, 0.3), (DeviceClass::MidRange, 0.4), (DeviceClass::LowEnd, 0.3)],
            5,
        );
        let network = NetworkModel::default();
        let work: Vec<ClientRoundWork> = (0..6)
            .map(|c| ClientRoundWork {
                client_id: c,
                samples_processed: samples,
                download_floats: 100_000,
                upload_floats: 100_000,
            })
            .collect();
        let wait = RoundTiming::compute(&work, &devices, &network, StragglerPolicy::WaitForAll);
        let capped = RoundTiming::compute(
            &work,
            &devices,
            &network,
            StragglerPolicy::Deadline { seconds: deadline },
        );
        prop_assert!(capped.round_seconds <= wait.round_seconds + 1e-9);
        prop_assert_eq!(capped.completed.len() + capped.dropped.len(), 6);
        prop_assert!(capped.upload_bytes <= wait.upload_bytes);
    }

    // ------------------------------------------------------------------
    // Drift diagnostics.
    // ------------------------------------------------------------------

    /// Mean drift is never above max drift, and the KKT residual obeys the
    /// triangle inequality against the individual dual norms.
    #[test]
    fn drift_report_aggregates_are_consistent(
        dims in 1usize..16,
        num_clients in 1usize..10,
        scale in 0.0f32..5.0,
    ) {
        let global = ParamVector::zeros(dims);
        let clients: Vec<_> = (0..num_clients)
            .map(|i| {
                let mut c = fedadmm::core::client::ClientState::new(i, vec![0], &global);
                let v: Vec<f32> = (0..dims).map(|j| scale * ((i + j) as f32).cos()).collect();
                c.local_model = ParamVector::from_vec(v.clone());
                c.dual = ParamVector::from_vec(v.iter().map(|x| -x).collect());
                c
            })
            .collect();
        let report = DriftReport::compute(&clients, &global);
        prop_assert!(report.mean_model_drift <= report.max_model_drift + 1e-6);
        prop_assert!(report.mean_dual_norm <= report.max_dual_norm + 1e-6);
        let sum_of_norms: f32 = clients.iter().map(|c| c.dual.norm()).sum();
        prop_assert!(report.dual_sum_norm <= sum_of_norms + 1e-4);
        prop_assert_eq!(report.num_clients, num_clients);
    }
}
