//! Integration tests that check the paper's *analysis* (Section IV and the
//! full proof of Section VII) against executable instances.
//!
//! The quadratic consensus substrate (`fedadmm_core::quadratic`) makes every
//! quantity of the proof available in closed form — the smoothness constant
//! `L`, the lower bound `f*`, exact subproblem minimisers — so Lemma 3,
//! Theorem 1 and the Table I complexity comparisons can be verified
//! numerically rather than taken on faith.

use fedadmm::core::quadratic::{QuadraticConfig, QuadraticFedAdmm, QuadraticProblem};
use fedadmm::core::theory::{
    min_rho, round_complexity, table1, theorem1_bound, theorem1_constants, ComplexityParams, Method,
};

fn problem(num_clients: usize, dim: usize, heterogeneity: f64, seed: u64) -> QuadraticProblem {
    QuadraticProblem::random(
        QuadraticConfig {
            num_clients,
            dim,
            eig_min: 0.5,
            eig_max: 2.0,
            heterogeneity,
        },
        seed,
    )
}

#[test]
fn theorem1_bound_holds_across_seeds_and_participation_levels() {
    // Full participation with exact solves: the running average of V_t must
    // stay below the Theorem 1 right-hand side for every seed tested.
    for seed in 0..5u64 {
        let p = problem(10, 8, 1.5, seed);
        let m = p.num_clients();
        let l = p.lipschitz();
        let rho = min_rho(l) * 1.5;
        let f_star = p.f_star();
        let constants = theorem1_constants(rho, l, 1.0).expect("ρ is admissible");

        let mut admm = QuadraticFedAdmm::new(p, rho);
        let l0 = admm.lagrangian();
        let initial_gap = QuadraticFedAdmm::new(problem(10, 8, 1.5, seed), rho).optimality_gap();
        let t = 60;
        let records = admm.run(t, m, seed + 100);

        let mut vts = vec![initial_gap];
        vts.extend(records.iter().take(t - 1).map(|r| r.optimality_gap));
        let average: f64 = vts.iter().sum::<f64>() / (m as f64 * t as f64);
        let bound = theorem1_bound(&constants, l0 - f_star, 0.0, l, m, t);
        assert!(
            average <= bound,
            "seed {seed}: measured average {average} exceeds the Theorem 1 bound {bound}"
        );
    }
}

#[test]
fn partial_participation_reaches_the_global_optimum_without_dissimilarity_assumptions() {
    // The headline of the analysis: convergence under partial participation
    // with heterogeneous clients, no bounded-dissimilarity assumption. Make
    // the clients *very* heterogeneous and activate only 20% per round.
    let p = problem(20, 6, 4.0, 11);
    let rho = min_rho(p.lipschitz()) * 1.5;
    let w_star = p.global_optimum();
    let mut admm = QuadraticFedAdmm::new(p, rho);
    let records = admm.run(800, 4, 42);
    let last = records.last().unwrap();
    assert!(
        last.dist_to_optimum < 5e-2,
        "θ is still {} away from w* = {:?}",
        last.dist_to_optimum,
        &w_star[..2]
    );
    // The optimality gap fell by several orders of magnitude.
    assert!(last.optimality_gap < records[0].optimality_gap * 1e-3);
}

#[test]
fn lemma3_lower_bound_holds_even_under_skewed_activation() {
    // Lemma 3 (L^{t+1} ≥ f* − Σε_i / 2L) must hold along the whole
    // trajectory, including when activation is heavily skewed towards a few
    // clients — activation only enters the proof through which subproblems
    // get refreshed.
    let p = problem(12, 5, 2.0, 3);
    let f_star = p.f_star();
    let rho = 2.0 * p.lipschitz() + 0.1;
    let mut admm = QuadraticFedAdmm::new(p, rho);
    // Clients 0 and 1 are activated 10× more often than the rest.
    let mut schedule: Vec<Vec<usize>> = Vec::new();
    for t in 0..200usize {
        if t % 10 == 9 {
            schedule.push(vec![t % 12]);
        } else {
            schedule.push(vec![0, 1]);
        }
    }
    for selected in &schedule {
        let record = admm.run_round_with(selected);
        assert!(
            record.lagrangian >= f_star - 1e-9,
            "Lemma 3 violated at round {}: L = {} < f* = {}",
            record.round,
            record.lagrangian,
            f_star
        );
    }
}

#[test]
fn dual_variables_satisfy_the_kkt_conditions_at_the_fixed_point() {
    // Section III-A: at a stationary point of problem (2),
    // ∇f_i(w_i*) + y_i* = 0 for every client and Σ_i y_i* = 0.
    let p = problem(6, 5, 1.0, 7);
    let rho = min_rho(p.lipschitz()) * 2.0;
    let mut admm = QuadraticFedAdmm::new(p, rho);
    admm.run(400, 6, 5);
    let problem_ref = admm.problem().clone();
    let mut dual_sum = vec![0.0f64; problem_ref.dim()];
    for (i, (w, y)) in admm.locals().iter().zip(admm.duals().iter()).enumerate() {
        let grad = problem_ref.clients()[i].grad(w);
        for j in 0..problem_ref.dim() {
            assert!(
                (grad[j] + y[j]).abs() < 1e-4,
                "client {i}: ∇f_i + y_i = {} at coordinate {j}",
                grad[j] + y[j]
            );
            dual_sum[j] += y[j];
        }
    }
    let sum_norm: f64 = dual_sum.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(
        sum_norm < 1e-3,
        "Σ y_i = {sum_norm} should vanish at stationarity"
    );
}

#[test]
fn epsilon_floor_scales_with_the_inexactness_level() {
    // Theorem 1's bound has an additive c3·ε_max floor: runs with larger
    // ε must stall at proportionally larger optimality gaps.
    let p = problem(8, 6, 1.0, 13);
    let rho = min_rho(p.lipschitz()) * 1.5;
    let gap_for = |eps: f64| {
        let mut admm = QuadraticFedAdmm::new(p.clone(), rho).with_epsilon(eps);
        admm.run(300, 8, 1).last().unwrap().optimality_gap
    };
    let tight = gap_for(1e-4);
    let loose = gap_for(1e-1);
    assert!(
        tight < loose,
        "ε = 1e-4 gap {tight} should be below ε = 0.1 gap {loose}"
    );
    assert!(
        loose < 10.0,
        "even the loose run stays in a bounded neighbourhood"
    );
}

#[test]
fn table1_reproduces_the_paper_ordering_in_the_high_accuracy_regime() {
    // ε = 1e-4, m = 1000, S = 100 (the paper's largest settings): FedADMM
    // needs fewer rounds than FedAvg and SCAFFOLD; FedPD is listed but
    // requires full participation; FedProx matches FedADMM's 1/ε rate only
    // if S > B².
    let p = ComplexityParams::paper_scale(1e-4);
    let rows = table1(&p);
    assert_eq!(rows.len(), 5);
    let value = |m: Method| rows.iter().find(|(x, _)| *x == m).unwrap().1;
    let admm = value(Method::FedAdmm).unwrap();
    assert!(admm < value(Method::FedAvg).unwrap());
    assert!(admm < value(Method::Scaffold).unwrap());
    assert_eq!(value(Method::FedPd), None, "FedPD needs full participation");
    // FedProx's bound does not depend on m/S, so it can be numerically
    // smaller — but it only exists at all because S > B² here.
    assert!(value(Method::FedProx).is_some());
    let constrained = ComplexityParams {
        dissimilarity: 50.0,
        ..p
    };
    assert_eq!(round_complexity(Method::FedProx, &constrained), None);
    // FedADMM is unaffected by the dissimilarity constant.
    assert_eq!(round_complexity(Method::FedAdmm, &constrained), Some(admm));
}

#[test]
fn admissible_rho_threshold_matches_the_golden_ratio_constant() {
    for l in [0.1, 1.0, 7.5] {
        let threshold = min_rho(l);
        assert!((threshold / l - (1.0 + 5.0f64.sqrt())).abs() < 1e-12);
        assert!(theorem1_constants(threshold * 0.99, l, 0.5).is_none());
        assert!(theorem1_constants(threshold * 1.01, l, 0.5).is_some());
    }
}
