//! Integration tests for the extension algorithms (FedDyn and the FedOpt
//! server-optimizer family) running inside the full simulation engine.
//!
//! These algorithms are not part of the paper's evaluation, but they share
//! FedADMM's interface and communication protocol, so every invariant the
//! engine guarantees for the paper's methods must hold for them too:
//! identical per-round upload cost, determinism under a fixed seed, and
//! learning progress on the synthetic substrate.

use fedadmm::prelude::*;

fn config(num_clients: usize, seed: u64) -> FedConfig {
    FedConfig {
        num_clients,
        participation: Participation::Fraction(0.3),
        local_epochs: 2,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    }
}

fn simulation<A: Algorithm>(
    algorithm: A,
    num_clients: usize,
    samples: usize,
    distribution: DataDistribution,
    seed: u64,
) -> SyncEngine<A> {
    let cfg = config(num_clients, seed);
    let (train, test) = SyntheticDataset::Mnist.generate(samples, 200, seed);
    let partition = distribution.partition(&train, num_clients, seed);
    RoundEngine::new(cfg, train, test, partition, algorithm, SyncRounds).unwrap()
}

#[test]
fn feddyn_learns_on_iid_data() {
    let mut sim = simulation(FedDyn::new(0.3), 8, 400, DataDistribution::Iid, 1);
    let (_, acc0) = sim.evaluate_global().unwrap();
    sim.run_rounds(10).unwrap();
    let best = sim.history().best_accuracy();
    assert!(
        best > acc0 + 0.15,
        "FedDyn accuracy only moved {acc0} → {best}"
    );
}

#[test]
fn feddyn_upload_cost_matches_fedadmm() {
    // Both upload exactly one d-vector per selected client per round.
    let d = ModelSpec::Logistic {
        input_dim: 784,
        num_classes: 10,
    }
    .num_params();
    let mut dyn_sim = simulation(FedDyn::new(0.3), 6, 120, DataDistribution::Iid, 2);
    let mut admm_sim = simulation(
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
        6,
        120,
        DataDistribution::Iid,
        2,
    );
    let r_dyn = dyn_sim.run_round().unwrap();
    let r_admm = admm_sim.run_round().unwrap();
    assert_eq!(r_dyn.upload_floats, r_dyn.num_selected * d);
    assert_eq!(r_dyn.upload_floats, r_admm.upload_floats);
}

#[test]
fn fedopt_family_learns_and_reports_correct_names() {
    for (alg, expected) in [
        (FedOpt::avgm(), "FedAvgM"),
        (FedOpt::adam(), "FedAdam"),
        (FedOpt::yogi(), "FedYogi"),
    ] {
        let mut sim = simulation(alg, 6, 300, DataDistribution::Iid, 3);
        assert_eq!(sim.history().algorithm, expected);
        let (_, acc0) = sim.evaluate_global().unwrap();
        sim.run_rounds(8).unwrap();
        let best = sim.history().best_accuracy();
        assert!(
            best > acc0 + 0.1,
            "{expected} accuracy only moved {acc0} → {best}"
        );
    }
}

#[test]
fn fedopt_sgd_with_unit_lr_tracks_fedavg() {
    // FedOpt(SGD, lr = 1) is algebraically FedAvg; over a full simulated run
    // (same seeds, same selection) the two global models must coincide.
    let mut a = simulation(
        FedOpt::new(ServerOptimizer::Sgd { lr: 1.0 }),
        6,
        240,
        DataDistribution::NonIidShards,
        4,
    );
    let mut b = simulation(FedAvg::new(), 6, 240, DataDistribution::NonIidShards, 4);
    a.run_rounds(4).unwrap();
    b.run_rounds(4).unwrap();
    let dist = a.global_model().dist(b.global_model());
    assert!(dist < 1e-4, "FedOpt(SGD,1) deviates from FedAvg by {dist}");
}

#[test]
fn extension_algorithms_are_deterministic_in_seed() {
    let mut a = simulation(FedOpt::adam(), 6, 180, DataDistribution::NonIidShards, 5);
    let mut b = simulation(FedOpt::adam(), 6, 180, DataDistribution::NonIidShards, 5);
    a.run_rounds(3).unwrap();
    b.run_rounds(3).unwrap();
    assert_eq!(a.global_model(), b.global_model());

    let mut c = simulation(FedDyn::new(0.3), 6, 180, DataDistribution::NonIidShards, 6);
    let mut d = simulation(FedDyn::new(0.3), 6, 180, DataDistribution::NonIidShards, 6);
    c.run_rounds(3).unwrap();
    d.run_rounds(3).unwrap();
    assert_eq!(c.global_model(), d.global_model());
}

#[test]
fn boxed_extension_algorithms_compose_with_the_engine() {
    // The Box<dyn Algorithm> path used by the experiment harness must accept
    // the extension algorithms as well.
    let algorithms: Vec<Box<dyn Algorithm>> = vec![
        Box::new(FedDyn::new(0.3)),
        Box::new(FedOpt::avgm()),
        Box::new(FedOpt::adagrad()),
    ];
    for alg in algorithms {
        let name = alg.name();
        let mut sim = simulation(alg, 5, 100, DataDistribution::Iid, 7);
        let record = sim.run_round().unwrap();
        assert!(record.upload_floats > 0, "{name} uploaded nothing");
        assert_eq!(sim.history().algorithm, name);
    }
}

#[test]
fn quantity_skew_partition_drives_a_full_run() {
    // The new quantity-skew partitioner composes with the engine: highly
    // imbalanced client volumes, every client still owns data, and FedADMM
    // still learns.
    use fedadmm::data::partition;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let cfg = config(10, 8);
    let (train, test) = SyntheticDataset::Mnist.generate(600, 200, 8);
    let mut rng = SmallRng::seed_from_u64(8);
    let partition = partition::quantity_skew(&train, 10, 1.5, &mut rng);
    assert!(partition.volume_imbalance() > 5.0);
    assert!(partition.sizes().iter().all(|&s| s > 0));

    let mut sim = RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
        SyncRounds,
    )
    .unwrap();
    let (_, acc0) = sim.evaluate_global().unwrap();
    sim.run_rounds(10).unwrap();
    assert!(sim.history().best_accuracy() > acc0 + 0.1);
}
