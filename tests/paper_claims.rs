//! Integration tests for the paper's structural claims — the statements in
//! Sections III and IV that can be checked mechanically (as opposed to the
//! empirical comparisons, which live in the experiments crate and benches).

use fedadmm::core::algorithms::{Algorithm, FedAdmm, FedAvg, FedProx, Scaffold, ServerStepSize};
use fedadmm::core::client::ClientState;
use fedadmm::core::param::ParamVector;
use fedadmm::core::trainer::{evaluate, LocalEnv};
use fedadmm::prelude::*;

fn tiny_env<'a>(
    train: &'a Dataset,
    indices: &'a [usize],
    model: ModelSpec,
    epochs: usize,
    seed: u64,
) -> LocalEnv<'a> {
    LocalEnv {
        dataset: train,
        indices,
        model,
        epochs,
        batch_size: BatchSize::Size(16),
        learning_rate: 0.1,
        seed,
    }
}

/// Section III-B: "By setting y_i ≡ 0 … we recover the local training
/// problem of FedProx. If additionally ρ is set to 0, one recovers the local
/// training problem of FedAvg."
#[test]
fn fedadmm_generalizes_fedprox_and_fedavg() {
    let (train, _) = SyntheticDataset::Mnist.generate(64, 10, 0);
    let model = ModelSpec::Logistic {
        input_dim: 784,
        num_classes: 10,
    };
    let indices: Vec<usize> = (0..64).collect();
    let theta = ParamVector::zeros(model.num_params());
    let env = tiny_env(&train, &indices, model, 2, 99);

    // FedADMM with a fresh client (zero dual) and global-model init, vs
    // FedProx with the same ρ: identical local trajectories.
    let rho = 0.25;
    let admm = FedAdmm::new(rho, ServerStepSize::Constant(1.0))
        .with_local_init(fedadmm::core::algorithms::LocalInit::GlobalModel);
    let mut admm_client = ClientState::new(0, indices.clone(), &theta);
    admm.client_update(&mut admm_client, &theta, &env).unwrap();

    let prox = FedProx::new(rho);
    let mut prox_client = ClientState::new(0, indices.clone(), &theta);
    let prox_msg = prox.client_update(&mut prox_client, &theta, &env).unwrap();
    assert!(admm_client.local_model.dist(&prox_msg.payload[0]) < 1e-5);

    // FedProx with ρ = 0 vs FedAvg: identical local trajectories.
    let prox0 = FedProx::new(0.0);
    let mut prox0_client = ClientState::new(0, indices.clone(), &theta);
    let prox0_msg = prox0
        .client_update(&mut prox0_client, &theta, &env)
        .unwrap();
    let avg = FedAvg::new();
    let mut avg_client = ClientState::new(0, indices.clone(), &theta);
    let avg_msg = avg.client_update(&mut avg_client, &theta, &env).unwrap();
    assert_eq!(prox0_msg.payload[0], avg_msg.payload[0]);
}

/// KKT structure (Section III-A): at any point, the dual update maintains
/// y_i^{t+1} = y_i^t + ρ(w_i^{t+1} − θ^t); summed over a full-participation
/// round starting from the consensus point, Σ_i y_i tracks ρ Σ_i (w_i − θ).
#[test]
fn dual_variables_track_model_discrepancy() {
    let (train, _) = SyntheticDataset::Mnist.generate(120, 10, 1);
    let model = ModelSpec::Logistic {
        input_dim: 784,
        num_classes: 10,
    };
    let theta = ParamVector::zeros(model.num_params());
    let rho = 0.1;
    let admm = FedAdmm::new(rho, ServerStepSize::Constant(1.0));
    let mut clients: Vec<ClientState> = (0..3)
        .map(|i| {
            let indices: Vec<usize> = (i * 40..(i + 1) * 40).collect();
            ClientState::new(i, indices, &theta)
        })
        .collect();
    for (i, client) in clients.iter_mut().enumerate() {
        let indices = client.indices.clone();
        let env = tiny_env(&train, &indices, model, 1, 10 + i as u64);
        admm.client_update(client, &theta, &env).unwrap();
        // Per-client identity y_i = ρ (w_i − θ) after the first update.
        let mut expected = client.local_model.sub(&theta);
        expected.scale(rho);
        assert!(client.dual.dist(&expected) < 1e-4);
    }
}

/// The abstract's communication claim: FedADMM's upload per client per round
/// equals FedAvg's and FedProx's (d floats), while SCAFFOLD uploads 2d.
#[test]
fn upload_costs_match_paper_table() {
    let d = 12_345;
    assert_eq!(FedAdmm::paper_default().upload_floats_per_client(d), d);
    assert_eq!(FedAvg::new().upload_floats_per_client(d), d);
    assert_eq!(FedProx::new(0.1).upload_floats_per_client(d), d);
    assert_eq!(Scaffold::new().upload_floats_per_client(d), 2 * d);
}

/// Remark after equation (5): with η = 1 and zero-initialised duals, the
/// server state after one full-participation FedADMM round equals
/// mean_i(w_i + y_i/ρ) — i.e. the tracking update reproduces the virtual
/// average of the augmented models (θ^{t+1} = (1/m) Σ u_i^{t+1}, as used in
/// the proof of Lemma 2).
#[test]
fn tracking_update_equals_mean_augmented_model_under_full_participation() {
    let (train, _) = SyntheticDataset::Mnist.generate(90, 10, 2);
    let model = ModelSpec::Logistic {
        input_dim: 784,
        num_classes: 10,
    };
    let d = model.num_params();
    let theta0 = ParamVector::zeros(d);
    let rho = 0.05;
    let mut algorithm = FedAdmm::new(rho, ServerStepSize::Constant(1.0));
    let mut clients: Vec<ClientState> = (0..3)
        .map(|i| ClientState::new(i, (i * 30..(i + 1) * 30).collect(), &theta0))
        .collect();
    let mut messages = Vec::new();
    for (i, client) in clients.iter_mut().enumerate() {
        let indices = client.indices.clone();
        let env = tiny_env(&train, &indices, model, 2, 20 + i as u64);
        messages.push(algorithm.client_update(client, &theta0, &env).unwrap());
    }
    let mut theta = theta0.clone();
    let mut rng = rand::rngs::mock::StepRng::new(0, 1);
    algorithm.server_update(&mut theta, &messages, 3, &mut rng);

    let mut mean_augmented = ParamVector::zeros(d);
    for client in &clients {
        mean_augmented.axpy(1.0 / 3.0, &client.augmented_model(rho));
    }
    assert!(
        theta.dist(&mean_augmented) < 1e-3,
        "tracking update deviates from the mean augmented model by {}",
        theta.dist(&mean_augmented)
    );
}

/// The evaluation helper and the simulation agree on what "accuracy of the
/// global model" means.
#[test]
fn simulation_accuracy_matches_direct_evaluation() {
    let config = FedConfig {
        num_clients: 8,
        participation: Participation::Fraction(0.25),
        local_epochs: 2,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed: 3,
        eval_subset: usize::MAX,
    };
    let (train, test) = SyntheticDataset::Mnist.generate(240, 120, 3);
    let partition = DataDistribution::Iid.partition(&train, 8, 3);
    let mut sim = RoundEngine::new(
        config,
        train,
        test.clone(),
        partition,
        FedAdmm::paper_default(),
        SyncRounds,
    )
    .unwrap();
    let record = sim.run_round().unwrap();
    let (_, direct_acc) = evaluate(
        config.model,
        sim.global_model().as_slice(),
        &test,
        usize::MAX,
    )
    .unwrap();
    assert!((record.test_accuracy - direct_acc).abs() < 1e-6);
}
