//! Integration tests for the asynchronous (staleness-aware) simulation
//! engine, exercising it through the public façade together with the data
//! and algorithm crates.
//!
//! The asynchronous engine is the substrate for studying the bounded-delay
//! trade-off the paper's related-work section raises about asynchronous
//! ADMM; these tests pin down its core invariants: virtual time advances
//! monotonically, stragglers produce stale updates, the staleness policy is
//! respected, and asynchronous FedADMM still learns on heterogeneous pools.

use fedadmm::prelude::*;

fn config(num_clients: usize, seed: u64) -> FedConfig {
    FedConfig {
        num_clients,
        participation: Participation::Fraction(0.5),
        local_epochs: 2,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic { input_dim: 784, num_classes: 10 },
        seed,
        eval_subset: usize::MAX,
    }
}

fn async_sim<A: Algorithm>(
    algorithm: A,
    num_clients: usize,
    async_config: AsyncConfig,
    seed: u64,
) -> AsyncSimulation<A> {
    let cfg = config(num_clients, seed);
    let (train, test) = SyntheticDataset::Mnist.generate(num_clients * 40, 200, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, num_clients, seed);
    AsyncSimulation::new(cfg, async_config, train, test, partition, algorithm).unwrap()
}

#[test]
fn async_fedadmm_learns_on_a_straggler_pool() {
    let pool = AsyncConfig::two_tier(10, 4, 1.0, 0.3, 8.0, 1)
        .with_staleness(StalenessWeight::Polynomial { exponent: 0.5 });
    let mut sim = async_sim(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), 10, pool, 1);
    let (_, acc0) = sim.evaluate_global().unwrap();
    sim.run_updates(60).unwrap();
    let (_, acc1) = sim.evaluate_global().unwrap();
    assert!(acc1 > acc0 + 0.1, "async FedADMM accuracy only moved {acc0} → {acc1}");
}

#[test]
fn virtual_time_is_monotone_and_stragglers_arrive_late() {
    let pool = AsyncConfig::two_tier(8, 4, 1.0, 0.5, 10.0, 2)
        .with_staleness(StalenessWeight::Constant);
    let mut sim = async_sim(FedAvg::new(), 8, pool, 2);
    sim.run_updates(30).unwrap();
    let records = sim.records();
    for pair in records.windows(2) {
        assert!(pair[1].sim_time >= pair[0].sim_time);
    }
    // With a 10× slowdown tier and 4 concurrent clients, some update must
    // arrive with non-zero staleness.
    let (_, max_staleness) = sim.staleness_stats();
    assert!(max_staleness > 0);
}

#[test]
fn bounded_delay_policy_never_applies_overly_stale_updates() {
    let max_staleness = 2usize;
    let pool = AsyncConfig::two_tier(10, 5, 1.0, 0.4, 12.0, 3)
        .with_staleness(StalenessWeight::BoundedDelay { max_staleness });
    let mut sim = async_sim(FedAvg::new(), 10, pool, 3);
    for _ in 0..50 {
        sim.step().unwrap();
    }
    for record in sim.records() {
        if record.staleness > max_staleness {
            assert_eq!(record.weight, 0.0, "stale update was applied: {record:?}");
        } else {
            assert_eq!(record.weight, 1.0);
        }
    }
}

#[test]
fn polynomial_damping_downweights_stale_updates() {
    let pool = AsyncConfig::two_tier(10, 5, 1.0, 0.4, 12.0, 4)
        .with_staleness(StalenessWeight::Polynomial { exponent: 1.0 });
    let mut sim = async_sim(FedAvg::new(), 10, pool, 4);
    for _ in 0..50 {
        sim.step().unwrap();
    }
    for record in sim.records() {
        let expected = 1.0 / (1.0 + record.staleness as f32);
        assert!((record.weight - expected).abs() < 1e-6);
    }
}

#[test]
fn upload_accounting_is_cumulative_and_matches_model_dimension() {
    let d = ModelSpec::Logistic { input_dim: 784, num_classes: 10 }.num_params();
    let pool = AsyncConfig::homogeneous(6, 2, 1.0);
    let mut sim = async_sim(FedAvg::new(), 6, pool, 5);
    sim.run_updates(10).unwrap();
    let records = sim.records();
    for (k, record) in records.iter().enumerate() {
        assert_eq!(record.cumulative_upload_floats, (k + 1) * d);
    }
}

#[test]
fn history_conversion_exposes_evaluation_points() {
    let mut pool = AsyncConfig::homogeneous(6, 3, 1.0);
    pool.eval_every = 5;
    let mut sim = async_sim(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), 6, pool, 6);
    sim.run_updates(20).unwrap();
    let history = sim.to_history();
    assert_eq!(history.algorithm, "FedADMM");
    assert_eq!(history.len(), sim.records().iter().filter(|r| r.test_accuracy.is_some()).count());
    assert!(history.len() >= 3);
    // The JSON export used by the experiment harness must work on converted
    // async histories too.
    let json = history.to_json_lines();
    assert!(json.lines().count() >= history.len());
}

#[test]
fn async_and_sync_reach_comparable_accuracy_on_homogeneous_pools() {
    // On a homogeneous pool with mild concurrency, asynchronous FedAvg is a
    // reordering of synchronous FedAvg's work; after the same number of
    // applied client updates both must be clearly better than initialization.
    let seed = 7;
    let pool = AsyncConfig::homogeneous(8, 2, 1.0);
    let mut async_run = async_sim(FedAvg::new(), 8, pool, seed);
    async_run.run_updates(32).unwrap();
    let (_, async_acc) = async_run.evaluate_global().unwrap();

    let cfg = config(8, seed);
    let (train, test) = SyntheticDataset::Mnist.generate(8 * 40, 200, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, 8, seed);
    let mut sync_run = Simulation::new(cfg, train, test, partition, FedAvg::new()).unwrap();
    // 8 rounds × 4 selected clients = 32 client updates.
    sync_run.run_rounds(8).unwrap();
    let (_, sync_acc) = sync_run.evaluate_global().unwrap();

    assert!(async_acc > 0.3, "async accuracy {async_acc}");
    assert!(sync_acc > 0.3, "sync accuracy {sync_acc}");
}
