//! Integration tests for the event-driven (staleness-aware) scheduling of
//! the unified engine, exercised through the public façade together with
//! the data and algorithm crates.
//!
//! The buffered-asynchronous schedule is the substrate for studying the
//! bounded-delay trade-off the paper's related-work section raises about
//! asynchronous ADMM; these tests pin down its core invariants: virtual
//! time advances monotonically, stragglers produce stale updates, the
//! staleness policy is respected, and asynchronous FedADMM still learns on
//! heterogeneous pools. The legacy `AsyncSimulation` wrapper is exercised
//! once at the end to pin the facade to the engine.

use fedadmm::prelude::*;
use fedadmm_core::engine::RoundEngine;

fn config(num_clients: usize, seed: u64) -> FedConfig {
    FedConfig {
        num_clients,
        participation: Participation::Fraction(0.5),
        local_epochs: 2,
        system_heterogeneity: false,
        batch_size: BatchSize::Size(16),
        local_learning_rate: 0.1,
        model: ModelSpec::Logistic {
            input_dim: 784,
            num_classes: 10,
        },
        seed,
        eval_subset: usize::MAX,
    }
}

fn async_engine<A: Algorithm>(
    algorithm: A,
    num_clients: usize,
    async_config: AsyncConfig,
    seed: u64,
) -> RoundEngine<A, BufferedAsync> {
    let cfg = config(num_clients, seed);
    let (train, test) = SyntheticDataset::Mnist.generate(num_clients * 40, 200, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, num_clients, seed);
    RoundEngine::new(
        cfg,
        train,
        test,
        partition,
        algorithm,
        BufferedAsync::new(async_config),
    )
    .unwrap()
}

/// Steps the engine until `updates` aggregations have been applied.
fn run_updates<A: Algorithm>(engine: &mut RoundEngine<A, BufferedAsync>, updates: usize) {
    let target = engine.scheduler().updates_applied() + updates;
    let mut guard = 0;
    while engine.scheduler().updates_applied() < target {
        engine.step().unwrap();
        guard += 1;
        assert!(
            guard < updates * 20 + 64,
            "scheduler failed to apply {updates} updates"
        );
    }
}

#[test]
fn async_fedadmm_learns_on_a_straggler_pool() {
    let pool = AsyncConfig::two_tier(10, 4, 1.0, 0.3, 8.0, 1)
        .with_staleness(StalenessWeight::Polynomial { exponent: 0.5 });
    let mut engine = async_engine(
        FedAdmm::new(0.3, ServerStepSize::Constant(1.0)),
        10,
        pool,
        1,
    );
    let (_, acc0) = engine.evaluate_global().unwrap();
    run_updates(&mut engine, 60);
    let (_, acc1) = engine.evaluate_global().unwrap();
    assert!(
        acc1 > acc0 + 0.1,
        "async FedADMM accuracy only moved {acc0} → {acc1}"
    );
}

#[test]
fn virtual_time_is_monotone_and_stragglers_arrive_late() {
    let pool =
        AsyncConfig::two_tier(8, 4, 1.0, 0.5, 10.0, 2).with_staleness(StalenessWeight::Constant);
    let mut engine = async_engine(FedAvg::new(), 8, pool, 2);
    run_updates(&mut engine, 30);
    let records = engine.events();
    for pair in records.windows(2) {
        assert!(pair[1].sim_time >= pair[0].sim_time);
    }
    // With a 10× slowdown tier and 4 concurrent clients, some update must
    // arrive with non-zero staleness.
    let (_, max_staleness) = engine.staleness_stats();
    assert!(max_staleness > 0);
}

#[test]
fn bounded_delay_policy_never_applies_overly_stale_updates() {
    let max_staleness = 2usize;
    let pool = AsyncConfig::two_tier(10, 5, 1.0, 0.4, 12.0, 3)
        .with_staleness(StalenessWeight::BoundedDelay { max_staleness });
    let mut engine = async_engine(FedAvg::new(), 10, pool, 3);
    for _ in 0..50 {
        engine.step().unwrap();
    }
    for record in engine.events() {
        if record.staleness > max_staleness {
            assert_eq!(record.weight, 0.0, "stale update was applied: {record:?}");
        } else {
            assert_eq!(record.weight, 1.0);
        }
    }
}

#[test]
fn polynomial_damping_downweights_stale_updates() {
    let pool = AsyncConfig::two_tier(10, 5, 1.0, 0.4, 12.0, 4)
        .with_staleness(StalenessWeight::Polynomial { exponent: 1.0 });
    let mut engine = async_engine(FedAvg::new(), 10, pool, 4);
    for _ in 0..50 {
        engine.step().unwrap();
    }
    for record in engine.events() {
        let expected = 1.0 / (1.0 + record.staleness as f32);
        assert!((record.weight - expected).abs() < 1e-6);
    }
}

#[test]
fn upload_accounting_is_cumulative_and_matches_model_dimension() {
    let d = ModelSpec::Logistic {
        input_dim: 784,
        num_classes: 10,
    }
    .num_params();
    let pool = AsyncConfig::homogeneous(6, 2, 1.0);
    let mut engine = async_engine(FedAvg::new(), 6, pool, 5);
    run_updates(&mut engine, 10);
    for (k, record) in engine.events().iter().enumerate() {
        assert_eq!(record.cumulative_upload_floats, (k + 1) * d);
    }
}

#[test]
fn history_records_accumulate_at_evaluation_points() {
    let mut pool = AsyncConfig::homogeneous(6, 3, 1.0);
    pool.eval_every = 5;
    let mut engine = async_engine(FedAdmm::new(0.3, ServerStepSize::Constant(1.0)), 6, pool, 6);
    run_updates(&mut engine, 20);
    let history = engine.history();
    assert_eq!(history.algorithm, "FedADMM");
    assert_eq!(
        history.len(),
        engine
            .events()
            .iter()
            .filter(|r| r.test_accuracy.is_some())
            .count()
    );
    assert!(history.len() >= 3);
    // The JSON export used by the experiment harness must work on
    // event-driven histories too.
    let json = history.to_json_lines();
    assert!(json.lines().count() >= history.len());
}

#[test]
fn async_and_sync_reach_comparable_accuracy_on_homogeneous_pools() {
    // On a homogeneous pool with mild concurrency and no staleness damping,
    // asynchronous FedAvg is a reordering of synchronous FedAvg's work;
    // after the same number of applied client updates both must be clearly
    // better than initialization. (Damping would break the premise: FedAvg
    // uploads full models, so down-weighting them shrinks θ.)
    let seed = 7;
    let pool = AsyncConfig::homogeneous(8, 2, 1.0).with_staleness(StalenessWeight::Constant);
    let mut async_run = async_engine(FedAvg::new(), 8, pool, seed);
    run_updates(&mut async_run, 48);
    let (_, async_acc) = async_run.evaluate_global().unwrap();

    let cfg = config(8, seed);
    let (train, test) = SyntheticDataset::Mnist.generate(8 * 40, 200, seed);
    let partition = DataDistribution::NonIidShards.partition(&train, 8, seed);
    let mut sync_run =
        RoundEngine::new(cfg, train, test, partition, FedAvg::new(), SyncRounds).unwrap();
    // 12 rounds × 4 selected clients = 48 client updates.
    sync_run.run_rounds(12).unwrap();
    let (_, sync_acc) = sync_run.evaluate_global().unwrap();

    assert!(async_acc > 0.25, "async accuracy {async_acc}");
    assert!(sync_acc > 0.25, "sync accuracy {sync_acc}");
}

#[test]
#[allow(deprecated)]
fn legacy_async_simulation_wrapper_matches_the_engine() {
    // The deprecated facade must behave identically to driving the engine
    // directly with a BufferedAsync scheduler (buffer size 1).
    let pool = AsyncConfig::two_tier(6, 3, 1.0, 0.3, 3.0, 11);
    let cfg = config(6, 11);
    let (train, test) = SyntheticDataset::Mnist.generate(240, 200, 11);
    let partition = DataDistribution::NonIidShards.partition(&train, 6, 11);

    let mut wrapper = AsyncSimulation::new(
        cfg,
        pool.clone(),
        train.clone(),
        test.clone(),
        partition.clone(),
        FedAvg::new(),
    )
    .unwrap();
    wrapper.run_updates(10).unwrap();

    let mut engine = RoundEngine::new(
        config(6, 11),
        train,
        test,
        partition,
        FedAvg::new(),
        BufferedAsync::new(pool),
    )
    .unwrap();
    run_updates(&mut engine, 10);

    assert_eq!(
        wrapper.updates_applied(),
        engine.scheduler().updates_applied()
    );
    assert_eq!(wrapper.global_model(), engine.global_model());
    assert_eq!(wrapper.records().len(), engine.events().len());
    assert_eq!(wrapper.now(), engine.now());
}
